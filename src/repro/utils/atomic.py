"""Atomic primitives used by the cTrie and the engine.

CPython has no user-level CAS, so :class:`AtomicReference` emulates
``compareAndSet`` with a per-reference lock. The *semantics* are identical to
a hardware CAS (linearizable read / compare-and-swap), which is what the
cTrie algorithm (Prokopec et al., PPoPP'12) requires; only the progress
guarantee differs (blocking instead of lock-free), which is invisible to
correctness and to our simulated performance model.
"""

from __future__ import annotations

import threading
from typing import Generic, TypeVar

T = TypeVar("T")


class AtomicReference(Generic[T]):
    """A mutable cell supporting linearizable ``get``/``set``/``compare_and_set``."""

    __slots__ = ("_lock", "_value")

    def __init__(self, value: T | None = None) -> None:
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> T | None:
        """Return the current value (volatile read)."""
        return self._value

    def set(self, value: T) -> None:
        """Unconditionally store ``value``."""
        with self._lock:
            self._value = value

    def compare_and_set(self, expect: T | None, update: T) -> bool:
        """Atomically set to ``update`` iff the current value *is* ``expect``.

        Identity comparison (``is``) matches the JVM/Scala CAS the cTrie
        paper assumes; value equality would wrongly succeed on equal-but-
        distinct nodes.
        """
        with self._lock:
            if self._value is expect:
                self._value = update
                return True
            return False

    def get_and_set(self, update: T) -> T | None:
        """Atomically swap in ``update`` and return the previous value."""
        with self._lock:
            prev = self._value
            self._value = update
            return prev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicReference({self._value!r})"


class AtomicLong:
    """A thread-safe counter (used for version numbers and metric counters)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, value: int = 0) -> None:
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> int:
        return self._value

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    def increment_and_get(self, delta: int = 1) -> int:
        with self._lock:
            self._value += delta
            return self._value

    def get_and_increment(self, delta: int = 1) -> int:
        with self._lock:
            prev = self._value
            self._value += delta
            return prev

    def add(self, delta: int) -> None:
        with self._lock:
            self._value += delta

    def compare_and_set(self, expect: int, update: int) -> bool:
        with self._lock:
            if self._value == expect:
                self._value = update
                return True
            return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"AtomicLong({self._value})"
