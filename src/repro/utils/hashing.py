"""Hash functions for partitioning and for the cTrie.

Two requirements drive this module:

* **Determinism across processes.** Python's builtin ``hash`` is salted for
  strings, so partition placement would not be reproducible between runs.
  We use a splitmix64-style finalizer for integers and FNV-1a for bytes,
  both stable and well-mixed.
* **Vectorization.** Shuffle partitioning hashes whole key columns; doing
  that row-by-row in Python dominates runtime, so :func:`hash_column`
  applies the same mixers with numpy (guide: vectorize for-loops).

The paper hashes string keys into a 32-bit number before using them as cTrie
keys (Section IV-E, Fig. 15 discussion); :func:`hash32` is that function.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _splitmix64(x: int) -> int:
    """Finalizer of the splitmix64 generator: a cheap, strong 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for b in data:
        h = ((h ^ b) * _FNV_PRIME) & _MASK64
    return h


def hash64(key: object) -> int:
    """Deterministic 64-bit hash of a scalar key (int, float, str, bytes, bool, None)."""
    if key is None:
        return 0x9E3779B97F4A7C15
    if isinstance(key, bool):
        return _splitmix64(int(key) + 0x5BF03635)
    if isinstance(key, (int, np.integer)):
        return _splitmix64(int(key) & _MASK64)
    if isinstance(key, (float, np.floating)):
        # Normalize -0.0 == 0.0 and hash the IEEE bit pattern.
        f = float(key)
        if f == 0.0:
            f = 0.0
        return _splitmix64(np.float64(f).view(np.uint64).item())
    if isinstance(key, str):
        return _fnv1a(key.encode("utf-8"))
    if isinstance(key, (bytes, bytearray)):
        return _fnv1a(bytes(key))
    if isinstance(key, tuple):
        h = 0x345678
        for item in key:
            h = _splitmix64(h ^ hash64(item))
        return h
    raise TypeError(f"unhashable key type for deterministic hashing: {type(key)!r}")


def hash32(key: object) -> int:
    """32-bit fold of :func:`hash64`; the paper's string-to-int key transform."""
    h = hash64(key)
    return (h ^ (h >> 32)) & _MASK32


def partition_for(key: object, num_partitions: int) -> int:
    """Map a key to a partition id in ``[0, num_partitions)``."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return hash64(key) % num_partitions


def hash_column(values: "np.ndarray | Iterable[object]") -> np.ndarray:
    """Vectorized :func:`hash64` over a column; returns ``uint64`` array.

    Integer and float arrays are mixed entirely in numpy; object arrays
    (strings, mixed) fall back to a per-element loop but still produce
    identical values to :func:`hash64`, which property tests assert.
    """
    arr = np.asarray(values)
    if arr.dtype.kind in ("i", "u"):
        return _splitmix64_np(arr.astype(np.uint64, copy=False))
    if arr.dtype.kind == "f":
        x = arr.astype(np.float64, copy=False).copy()
        x[x == 0.0] = 0.0  # collapse -0.0
        return _splitmix64_np(x.view(np.uint64))
    if arr.dtype.kind == "b":
        return _splitmix64_np(arr.astype(np.uint64) + np.uint64(0x5BF03635))
    return np.fromiter(
        (hash64(v) for v in arr.tolist()), dtype=np.uint64, count=arr.size
    )


def _splitmix64_np(x: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))


def partition_column(values: "np.ndarray | Iterable[object]", num_partitions: int) -> np.ndarray:
    """Vectorized :func:`partition_for` over a column; returns ``int64`` array."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return (hash_column(values) % np.uint64(num_partitions)).astype(np.int64)
