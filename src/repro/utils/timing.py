"""Timing helpers shared by the engine metrics and the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


class Stopwatch:
    """Accumulating stopwatch; ``with sw: ...`` adds the block's wall time."""

    __slots__ = ("elapsed", "_started")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._started: float | None = None

    def start(self) -> "Stopwatch":
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class PhaseTimer:
    """Named phase accumulator: used for Fig. 1 style time breakdowns."""

    phases: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + time.perf_counter() - t0

    def add(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def total(self) -> float:
        return sum(self.phases.values())

    def merge(self, other: "PhaseTimer") -> None:
        for name, seconds in other.phases.items():
            self.add(name, seconds)
