"""Deep object-size metering: the JAMM memory-meter analogue (paper Fig. 11).

The paper instruments the cTrie with JAMM to show the per-partition index
overhead stays under 2% of the data size. :func:`deep_sizeof` walks an object
graph once (cycle-safe, shared-structure-aware) summing ``sys.getsizeof``.
Shared-structure awareness matters here: cTrie snapshots share almost all of
their nodes with the parent, and the whole point of Fig. 11 / the MVCC design
is that shared state is *not* double-counted.
"""

from __future__ import annotations

import sys
from typing import Any, Callable

import numpy as np

_ATOMIC_TYPES = (int, float, complex, bool, str, bytes, type(None), range)


def deep_sizeof(
    obj: Any,
    *,
    seen: set[int] | None = None,
    size_of: Callable[[Any], int] = sys.getsizeof,
) -> int:
    """Return the total bytes reachable from ``obj``, counting shared objects once.

    ``seen`` may be passed in to measure *incremental* footprint: objects
    already in ``seen`` are counted as zero, so
    ``deep_sizeof(snapshot, seen=ids_of(parent))`` yields only the delta a
    snapshot adds over its parent.
    """
    if seen is None:
        seen = set()
    stack = [obj]
    total = 0
    while stack:
        o = stack.pop()
        oid = id(o)
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(o, np.ndarray):
            total += size_of(o)
            if o.base is not None:
                stack.append(o.base)
            continue
        total += size_of(o)
        if isinstance(o, _ATOMIC_TYPES):
            continue
        if isinstance(o, (list, tuple, set, frozenset)):
            stack.extend(o)
        elif isinstance(o, dict):
            stack.extend(o.keys())
            stack.extend(o.values())
        elif isinstance(o, (bytearray, memoryview)):
            continue
        else:
            d = getattr(o, "__dict__", None)
            if d is not None:
                stack.append(d)
            slots = getattr(type(o), "__slots__", ())
            if isinstance(slots, str):
                slots = (slots,)
            for cls in type(o).__mro__:
                for slot in getattr(cls, "__slots__", ()) or ():
                    if isinstance(slot, str) and hasattr(o, slot):
                        stack.append(getattr(o, slot))
    return total


def reachable_ids(obj: Any) -> set[int]:
    """Return the ``id``s of every object reachable from ``obj``.

    Used together with :func:`deep_sizeof`'s ``seen`` parameter to measure
    snapshot deltas.
    """
    seen: set[int] = set()
    deep_sizeof(obj, seen=seen)
    return seen
