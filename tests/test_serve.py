"""Serving layer: admission control, fast path, concurrent ingest, chaos.

The server's contract under test everywhere here: it may *reject*
(retryably), but it never returns a wrong answer.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import Config
from repro.engine.context import EngineContext
from repro.engine.replay import ReplayLog
from repro.serve import (
    IngestLoop,
    PinnedSnapshot,
    QueryServer,
    ServeConfig,
    ServeRejected,
    recognize,
)
from repro.sql.session import Session

from .conftest import USER_SCHEMA, make_users


def make_server(
    config: Config | None = None,
    serve: ServeConfig | None = None,
    n_users: int = 200,
):
    config = config or Config(default_parallelism=4, shuffle_partitions=4, row_batch_size=4096)
    session = Session(context=EngineContext(config=config))
    df = session.create_dataframe(make_users(n_users), USER_SCHEMA, name="users")
    idf = df.create_index("uid")
    server = QueryServer(session, serve or ServeConfig(num_workers=2))
    server.publish("users", idf)
    return session, idf, server


# -- fast path correctness ---------------------------------------------------------


class TestFastPath:
    def test_point_lookup_matches_general_pipeline(self):
        session, _, server = make_server()
        with server:
            for uid in (0, 7, 42, 199, 777):  # 777 is absent
                text = f"SELECT * FROM users WHERE uid = {uid}"
                result = server.query(text)
                assert result.path == "fastpath"
                assert sorted(result.rows) == sorted(session.sql(text).collect_tuples())

    def test_in_list_residual_projection_and_limit(self):
        session, _, server = make_server()
        with server:
            text = (
                "SELECT name, score FROM users "
                "WHERE uid IN (3, 4, 5, 6) AND score > 20 LIMIT 3"
            )
            result = server.query(text)
            assert result.path == "fastpath"
            reference = session.sql(
                "SELECT name, score FROM users WHERE uid IN (3, 4, 5, 6) AND score > 20"
            ).collect_tuples()
            assert len(result.rows) == min(3, len(reference))
            assert all(r in reference for r in result.rows)

    def test_prepared_statement_fast_path(self):
        session, _, server = make_server()
        with server:
            for uid in range(20):
                result = server.query("SELECT * FROM users WHERE uid = ?", params=[uid])
                assert result.path == "fastpath"
                assert result.rows == session.sql(
                    f"SELECT * FROM users WHERE uid = {uid}"
                ).collect_tuples()

    def test_fast_path_submits_no_jobs(self):
        session, _, server = make_server()
        registry = session.context.registry
        with server:
            server.query("SELECT * FROM users WHERE uid = 1")  # warm the template
            before = registry.counter_value("jobs_submitted_total")
            for uid in range(25):
                result = server.query("SELECT * FROM users WHERE uid = ?", params=[uid])
                assert result.path == "fastpath"
            assert registry.counter_value("jobs_submitted_total") == before

    def test_non_point_queries_fall_back_to_general(self):
        session, _, server = make_server()
        with server:
            for text in (
                "SELECT name, SUM(score) AS s FROM users GROUP BY name",
                "SELECT * FROM users WHERE score > 50",  # non-key predicate
                "SELECT uid, score * 2 AS d FROM users WHERE uid = 3",  # computed proj
            ):
                result = server.query(text)
                assert result.path == "general"
                assert sorted(result.rows) == sorted(session.sql(text).collect_tuples())

    def test_fastpath_disabled_by_config(self):
        session, _, server = make_server(serve=ServeConfig(enable_fastpath=False))
        with server:
            result = server.query("SELECT * FROM users WHERE uid = 3")
            assert result.path == "general"
            assert result.rows == session.sql(
                "SELECT * FROM users WHERE uid = 3"
            ).collect_tuples()

    def test_recognize_rejects_unserved_and_unindexed(self):
        session, idf, server = make_server()
        with server:
            logical = session.sql_logical("SELECT * FROM users WHERE uid = 3")
            assert recognize(logical, session.catalog, ["users"]) is not None
            assert recognize(logical, session.catalog, ["other_view"]) is None
            # Plain (non-indexed) relation never fast-paths.
            session.create_dataframe(
                make_users(10), USER_SCHEMA, name="plain"
            ).create_or_replace_temp_view("plain")
            plain = session.sql_logical("SELECT * FROM plain WHERE uid = 3")
            assert recognize(plain, session.catalog, ["users", "plain"]) is None

    def test_serve_spans_nest_cleanly(self):
        config = Config(
            default_parallelism=4,
            shuffle_partitions=4,
            row_batch_size=4096,
            tracing_enabled=True,
        )
        session, _, server = make_server(config=config)
        with server:
            server.query("SELECT * FROM users WHERE uid = 3")
            server.query("SELECT name, SUM(score) AS s FROM users GROUP BY name")
        tracer = session.context.tracer
        assert tracer.integrity_errors() == []
        kinds = {s.kind for s in tracer.finished_spans()}
        assert "serve" in kinds


# -- admission control ---------------------------------------------------------------


class TestAdmission:
    def test_queue_full_rejection_is_retryable(self):
        session, _, server = make_server(
            serve=ServeConfig(num_workers=1, max_queue_depth=2)
        )
        blocker = session.context.job_lock
        blocker.acquire()  # general-path queries now block inside run_job
        try:
            tickets = [server.submit("SELECT * FROM users WHERE score > -1")]
            # Wait for the worker to dequeue it (it then blocks on job_lock).
            deadline = time.time() + 5.0
            while server._queue.qsize() > 0 and time.time() < deadline:
                time.sleep(0.005)
            # Two more fill the queue.
            for _ in range(2):
                tickets.append(server.submit("SELECT * FROM users WHERE score > -1"))
            with pytest.raises(ServeRejected) as exc_info:
                server.submit("SELECT * FROM users WHERE score > -1")
            assert exc_info.value.reason == "queue_full"
            assert exc_info.value.retryable
        finally:
            blocker.release()
        for t in tickets:
            assert t.result(timeout=30.0).path == "general"
        server.shutdown()
        assert (
            session.context.registry.counter_value(
                "serve_rejections_total", reason="queue_full"
            )
            == 1
        )

    def test_deadline_shedding(self):
        session, _, server = make_server(serve=ServeConfig(num_workers=1))
        blocker = session.context.job_lock
        blocker.acquire()
        try:
            running = server.submit("SELECT * FROM users WHERE score > -1")
            stale = server.submit(
                "SELECT * FROM users WHERE uid = 1", deadline=0.01
            )
            time.sleep(0.1)
        finally:
            blocker.release()
        assert running.result(timeout=30.0).path == "general"
        with pytest.raises(ServeRejected) as exc_info:
            stale.result(timeout=30.0)
        assert exc_info.value.reason == "deadline"
        assert exc_info.value.retryable
        server.shutdown()

    def test_deadline_expiry_while_queued_unblocks_client(self):
        """Regression: a client blocked in ``result()`` on a ticket whose
        deadline expires while it is still *queued* must get the retryable
        deadline rejection immediately — not sit out its full timeout
        behind a stalled worker."""
        session, _, server = make_server(serve=ServeConfig(num_workers=1))
        blocker = session.context.job_lock
        blocker.acquire()  # the single worker wedges on the general path
        try:
            running = server.submit("SELECT * FROM users WHERE score > -1")
            stale = server.submit("SELECT * FROM users WHERE uid = 1", deadline=0.05)
            t0 = time.perf_counter()
            with pytest.raises(ServeRejected) as exc_info:
                stale.result(timeout=30.0)  # worker is still wedged
            waited = time.perf_counter() - t0
            assert exc_info.value.reason == "deadline"
            assert exc_info.value.retryable
            assert waited < 5.0, "client waited out the timeout, not the deadline"
        finally:
            blocker.release()
        assert running.result(timeout=30.0).path == "general"
        server.shutdown()
        # The worker dequeues the expired ticket and skips it: exactly one
        # deadline rejection was recorded, by the client-side expiry.
        assert (
            session.context.registry.counter_value(
                "serve_rejections_total", reason="deadline"
            )
            == 1
        )

    def test_memory_pressure_shedding_via_probe(self):
        pressure = [0.0]
        session, _, server = make_server(
            serve=ServeConfig(pressure_probe=lambda: pressure[0], shed_memory_fraction=0.9)
        )
        with server:
            assert server.query("SELECT * FROM users WHERE uid = 1").path == "fastpath"
            pressure[0] = 0.95
            with pytest.raises(ServeRejected) as exc_info:
                server.submit("SELECT * FROM users WHERE uid = 1")
            assert exc_info.value.reason == "memory_pressure"
            assert exc_info.value.retryable
            pressure[0] = 0.2
            assert server.query("SELECT * FROM users WHERE uid = 1").path == "fastpath"

    def test_chaos_rejections_are_deterministic_and_retryable(self):
        config = Config(
            default_parallelism=4,
            shuffle_partitions=4,
            row_batch_size=4096,
            chaos_seed=7,
            chaos_serve_rejection_prob=0.3,
        )

        def run_once() -> list[int]:
            _, _, server = make_server(config=config)
            rejected = []
            with server:
                for i in range(30):
                    try:
                        server.query("SELECT * FROM users WHERE uid = 1")
                    except ServeRejected as exc:
                        assert exc.reason == "chaos"
                        assert exc.retryable
                        rejected.append(i)
            return rejected

        first, second = run_once(), run_once()
        assert first == second
        assert 0 < len(first) < 30

    def test_shutdown_rejects_new_queries(self):
        _, _, server = make_server()
        server.shutdown()
        with pytest.raises(ServeRejected) as exc_info:
            server.submit("SELECT * FROM users WHERE uid = 1")
        assert exc_info.value.reason == "shutdown"
        assert not exc_info.value.retryable


class TestShutdownDrain:
    """``shutdown(drain=True)`` with queries in flight: every ticket must
    resolve — completed or rejected — under every scheduler mode. A ticket
    left permanently pending is a hung client."""

    @pytest.mark.parametrize("mode", ["sequential", "threads", "processes"])
    def test_drain_resolves_every_inflight_ticket(self, mode):
        config = Config(
            default_parallelism=4,
            shuffle_partitions=4,
            row_batch_size=4096,
            scheduler_mode=mode,
        )
        session, _, server = make_server(config=config, serve=ServeConfig(num_workers=2))
        tickets = []
        for i in range(4):
            tickets.append(server.submit(f"SELECT name FROM users WHERE uid = {i}"))
            tickets.append(server.submit("SELECT * FROM users WHERE score > -1"))
        server.shutdown(drain=True)
        for t in tickets:
            result = t.result(timeout=30.0)  # drained: all complete, none hang
            assert result.rows, f"drained ticket returned no rows: {t.text!r}"
        assert all(t.done for t in tickets)

    @pytest.mark.parametrize("mode", ["sequential", "threads"])
    def test_no_drain_fails_queued_tickets_promptly(self, mode):
        config = Config(
            default_parallelism=4,
            shuffle_partitions=4,
            row_batch_size=4096,
            scheduler_mode=mode,
        )
        session, _, server = make_server(config=config, serve=ServeConfig(num_workers=1))
        blocker = session.context.job_lock
        blocker.acquire()  # wedge the worker so the rest stay queued
        try:
            tickets = [server.submit("SELECT * FROM users WHERE score > -1")]
            deadline = time.time() + 5.0
            while server._queue.qsize() > 0 and time.time() < deadline:
                time.sleep(0.005)
            for i in range(3):
                tickets.append(server.submit(f"SELECT name FROM users WHERE uid = {i}"))
            shutdown_thread = threading.Thread(
                target=server.shutdown, kwargs={"drain": False}
            )
            shutdown_thread.start()
            # Queued tickets are rejected without waiting for the wedged one.
            for t in tickets[1:]:
                with pytest.raises(ServeRejected) as exc_info:
                    t.result(timeout=10.0)
                assert exc_info.value.reason == "shutdown"
        finally:
            blocker.release()
        shutdown_thread.join(timeout=30.0)
        assert not shutdown_thread.is_alive()
        assert tickets[0].result(timeout=30.0).rows  # in-flight one finishes
        assert all(t.done for t in tickets)


# -- concurrent ingest / read-after-write ---------------------------------------------


class TestConcurrentIngest:
    def test_readers_see_consistent_monotonic_snapshots(self):
        session, idf, server = make_server(serve=ServeConfig(num_workers=4))
        base_rows = {r[0]: r for r in make_users(200)}
        n_batches, batch_rows = 8, 25
        batches = [
            [(10_000 + b * batch_rows + j, f"batch{b}", float(b)) for j in range(batch_rows)]
            for b in range(n_batches)
        ]
        appended = {r[0]: r for batch in batches for r in batch}
        errors: list[str] = []

        def reader(seed: int) -> None:
            last_version = -1
            keys = list(base_rows)[seed::4] + list(appended)[seed::4]
            for k in keys:
                try:
                    result = server.query(
                        "SELECT * FROM users WHERE uid = ?", params=[k], timeout=60.0
                    )
                except ServeRejected as exc:
                    if not exc.retryable:
                        errors.append(f"non-retryable rejection: {exc}")
                    continue
                if result.snapshot_version is not None:
                    if result.snapshot_version < last_version:
                        errors.append(
                            f"version went backwards: {result.snapshot_version} "
                            f"< {last_version}"
                        )
                    last_version = result.snapshot_version
                if k in base_rows:
                    # Base rows exist in every version.
                    if result.rows != [base_rows[k]]:
                        errors.append(f"torn/wrong base row for uid={k}: {result.rows}")
                elif result.rows:
                    # Appended rows are either absent (older snapshot) or intact.
                    if result.rows != [appended[k]]:
                        errors.append(f"torn appended row for uid={k}: {result.rows}")

        ingest = IngestLoop(server, "users", batches, retain_versions=2)
        readers = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        ingest.start()
        for t in readers:
            t.start()
        ingest.join(60.0)
        for t in readers:
            t.join(60.0)
        server.shutdown()
        assert ingest.error is None
        assert errors == []
        assert ingest.published_versions == list(range(1, n_batches + 1))
        # After ingest, every appended row is served at the final version.
        final = server.pinned("users")
        assert final.version == n_batches
        for k, row in list(appended.items())[::7]:
            assert final.lookup(k) == [row]
        # Replay log was truncated behind the retention window.
        log = final.idf.replay_log
        assert log.first_retained_id > 0
        assert len(log) <= 2

    def test_publish_bumps_catalog_epoch_and_invalidates_templates(self):
        session, idf, server = make_server()
        with server:
            r1 = server.query("SELECT * FROM users WHERE uid = 9999")
            assert r1.path == "fastpath" and r1.rows == []
            child = idf.append_rows([(9999, "late", 1.5)])
            server.publish("users", child)
            r2 = server.query("SELECT * FROM users WHERE uid = 9999")
            assert r2.path == "fastpath"
            assert r2.rows == [(9999, "late", 1.5)]
            assert r2.snapshot_version == child.version


# -- chaos: kills and squeezes mid-serving ---------------------------------------------


class TestChaosServing:
    def test_executor_kill_mid_serving_zero_wrong_answers(self):
        config = Config(
            default_parallelism=4,
            shuffle_partitions=4,
            row_batch_size=4096,
            executor_replacement=True,
            executor_restart_delay_tasks=4,
        )
        session, idf, server = make_server(config=config)
        context = session.context
        with server:
            expected = {r[0]: r for r in make_users(200)}
            for i in range(10):
                assert server.query(
                    "SELECT * FROM users WHERE uid = ?", params=[i]
                ).rows == [expected[i]]
            victim = context.alive_executor_ids()[0]
            context.kill_executor(victim, reason="chaos-serving")
            # Fast path keeps serving from the pin (objects are held
            # in-process; the block store is not on this read path).
            for i in range(10, 20):
                result = server.query("SELECT * FROM users WHERE uid = ?", params=[i])
                assert result.path == "fastpath"
                assert result.rows == [expected[i]]
            # General path recovers through the scheduler's machinery.
            general = server.query("SELECT name, SUM(score) AS s FROM users GROUP BY name")
            assert general.path == "general"
            assert sorted(general.rows) == sorted(
                session.sql(
                    "SELECT name, SUM(score) AS s FROM users GROUP BY name"
                ).collect_tuples()
            )
            # Re-publishing re-pins: partitions rebuild from lineage.
            child = idf.append_rows([(5000, "post-kill", 2.0)])
            server.publish("users", child)
            assert server.query(
                "SELECT * FROM users WHERE uid = ?", params=[5000]
            ).rows == [(5000, "post-kill", 2.0)]

    def test_memory_squeeze_and_chaos_mix_only_retryable_rejections(self):
        config = Config(
            default_parallelism=4,
            shuffle_partitions=4,
            row_batch_size=4096,
            chaos_seed=11,
            chaos_serve_rejection_prob=0.15,
            chaos_memory_squeeze_prob=0.2,
            chaos_memory_squeeze_factor=0.5,
            executor_memory_bytes=512 * 1024,
            executor_replacement=True,
        )
        session, idf, server = make_server(config=config)
        expected = {r[0]: r for r in make_users(200)}
        wrong, rejections = [], 0
        with server:
            ingest = IngestLoop(
                server,
                "users",
                [[(20_000 + b, f"chaos{b}", 0.5)] for b in range(5)],
                retain_versions=2,
            )
            ingest.start()
            for i in range(60):
                uid = i % 200
                try:
                    result = server.query(
                        "SELECT * FROM users WHERE uid = ?", params=[uid], timeout=60.0
                    )
                except ServeRejected as exc:
                    assert exc.retryable, f"non-retryable mid-chaos: {exc}"
                    rejections += 1
                    continue
                if result.rows != [expected[uid]]:
                    wrong.append((uid, result.rows))
            ingest.join(60.0)
        assert ingest.error is None
        assert wrong == []
        assert rejections > 0  # chaos actually fired


# -- replay-log truncation -------------------------------------------------------------


class TestReplayTruncation:
    def test_truncate_through_drops_prefix_only(self):
        log = ReplayLog()
        for v in range(1, 6):
            log.append(v, [(v, f"r{v}")])
        assert log.truncate_through(2) == 3  # records 0..2 freed one row each
        assert log.first_retained_id == 3
        assert len(log) == 2
        with pytest.raises(KeyError):
            log.get(1)
        assert log.get(3).version == 4
        # Truncating below the base again is a no-op.
        assert log.truncate_through(1) == 0
        # Truncating past the tail empties the log but ids keep advancing.
        assert log.truncate_through(99) == 2
        assert len(log) == 0
        rec = log.append(6, [(6, "r6")])
        assert rec.record_id == 5
        assert log.last_record_id == 5

    def test_truncate_empty_log_is_noop(self):
        """Satellite regression: truncating an empty log (fresh, or already
        fully compacted) must be a no-op, never an exception."""
        log = ReplayLog()
        assert log.truncate_through(0) == 0
        assert log.truncate_through(100) == 0
        assert len(log) == 0
        assert log.first_retained_id == 0
        assert log.last_record_id == -1
        # The log still works afterwards.
        rec = log.append(1, [(1, "a")])
        assert rec.record_id == 0
        assert log.get(0).version == 1

    def test_truncate_past_head_is_noop_on_compacted_log(self):
        """Truncating at or below the compaction base again — e.g. a
        retention pass re-running with a stale watermark — frees nothing
        and moves nothing."""
        log = ReplayLog()
        for v in range(1, 4):
            log.append(v, [(v, f"r{v}")])
        assert log.truncate_through(log.last_record_id) == 3  # empty it
        base = log.first_retained_id
        # Every stale watermark at or below the base is a no-op.
        for stale in (-1, 0, base - 1):
            assert log.truncate_through(stale) == 0
        assert log.first_retained_id == base
        assert len(log) == 0
        # Ids keep advancing monotonically across the no-ops.
        rec = log.append(4, [(4, "r4")])
        assert rec.record_id == base

    def test_live_version_replays_after_truncation(self):
        """The regression the satellite demands: truncating the log must not
        break lineage replay of versions still being served — each AppendRDD
        holds its own copy of the rows that produced it."""
        config = Config(default_parallelism=4, shuffle_partitions=4, row_batch_size=4096)
        session = Session(context=EngineContext(config=config))
        df = session.create_dataframe(make_users(50), USER_SCHEMA, name="users")
        idf = df.create_index("uid")
        v1 = idf.append_rows([(900, "a", 1.0)])
        v2 = v1.append_rows([(901, "b", 2.0)])
        assert v2.count() == 52  # materialize before truncating
        # Drop the whole log, then force recomputation from lineage.
        v2.replay_log.truncate_through(v2.replay_log.last_record_id)
        assert len(v2.replay_log) == 0
        for split in range(v2.num_partitions):
            session.context.invalidate_block((v2.rdd.rdd_id, split))
        rows = {t[:1][0]: t for t in (tuple(r) for r in v2.collect())}
        assert rows[900] == (900, "a", 1.0)
        assert rows[901] == (901, "b", 2.0)
        assert len(rows) == 52

    def test_pin_survives_truncation_and_eviction(self):
        session, idf, server = make_server()
        with server:
            child = idf.append_rows([(800, "pinned", 3.0)])
            server.publish("users", child)
            log = child.replay_log
            log.truncate_through(log.last_record_id)
            for split in range(child.num_partitions):
                session.context.invalidate_block((child.rdd.rdd_id, split))
            result = server.query("SELECT * FROM users WHERE uid = 800")
            assert result.path == "fastpath"
            assert result.rows == [(800, "pinned", 3.0)]


# -- snapshot pinning -------------------------------------------------------------------


class TestPinnedSnapshot:
    def test_pin_materializes_all_partitions_at_one_version(self):
        config = Config(default_parallelism=4, shuffle_partitions=4, row_batch_size=4096)
        session = Session(context=EngineContext(config=config))
        df = session.create_dataframe(make_users(100), USER_SCHEMA, name="users")
        idf = df.create_index("uid")
        pin = PinnedSnapshot.pin(idf)
        assert pin.version == 0
        assert len(pin.partitions) == idf.num_partitions
        assert pin.row_count() == 100
        for uid in (0, 17, 99):
            assert pin.lookup(uid) == idf.lookup_tuples(uid)

    def test_parent_pin_isolated_from_child_appends(self):
        config = Config(default_parallelism=4, shuffle_partitions=4, row_batch_size=4096)
        session = Session(context=EngineContext(config=config))
        df = session.create_dataframe(make_users(100), USER_SCHEMA, name="users")
        idf = df.create_index("uid")
        parent_pin = PinnedSnapshot.pin(idf)
        child = idf.append_rows([(700, "child-only", 9.0)])
        child_pin = PinnedSnapshot.pin(child)
        assert child_pin.lookup(700) == [(700, "child-only", 9.0)]
        assert parent_pin.lookup(700) == []  # MVCC: the parent never sees it
        assert parent_pin.lookup(5) == child_pin.lookup(5)
