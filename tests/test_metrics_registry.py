"""Unified MetricsRegistry: primitives, and the engine actually feeding it.

One registry per EngineContext absorbs the previously siloed streams —
TaskMetrics, recovery events, shuffle/cache byte accounting — as
Prometheus-style counters/gauges/histograms, so one snapshot answers "what
did this run do" without walking three collectors.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster.topology import private_cluster
from repro.config import Config
from repro.engine.context import EngineContext
from repro.obs.registry import MetricsRegistry

MODES = ("sequential", "threads")


def make_context(mode: str = "sequential", **overrides) -> EngineContext:
    cfg = dict(default_parallelism=4, shuffle_partitions=4, scheduler_mode=mode)
    cfg.update(overrides)
    return EngineContext(config=Config(**cfg), topology=private_cluster(num_machines=2))


class TestPrimitives:
    def test_counters_with_labels(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", route="a")
        reg.inc("requests_total", 2, route="b")
        reg.inc("requests_total", route="a")
        assert reg.counter_value("requests_total", route="a") == 2
        assert reg.counter_value("requests_total", route="b") == 2
        assert reg.counter_total("requests_total") == 4
        assert reg.counter_by_label("requests_total", "route") == {"a": 2, "b": 2}

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("x_total", -1)

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.set_gauge("pool_width", 8)
        reg.set_gauge("pool_width", 5)
        assert reg.gauge_value("pool_width") == 5

    def test_histograms_accumulate(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("latency_seconds", v)
        stats = reg.histogram_stats("latency_seconds")
        assert stats == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.inc("a_total")
        reg.set_gauge("g", 1)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert snap["counters"]["a_total"] == 1
        assert snap["gauges"]["g"] == 1
        assert snap["histograms"]["h"]["count"] == 1
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.inc("hits_total")
                reg.observe("lat", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits_total") == 8000
        assert reg.histogram_stats("lat")["count"] == 8000


class TestEngineWiring:
    @pytest.mark.parametrize("mode", MODES)
    def test_task_and_stage_counters(self, mode):
        context = make_context(mode)
        context.parallelize(list(range(100)), 4).map(lambda x: x + 1).collect()
        reg = context.registry
        assert reg.counter_value("jobs_submitted_total") == 1
        assert reg.counter_total("stages_executed_total") == 1
        assert reg.counter_value("tasks_completed_total") == 4
        assert reg.counter_total("task_launches_total") == 4
        assert reg.histogram_stats("task_compute_seconds")["count"] == 4

    @pytest.mark.parametrize("mode", MODES)
    def test_shuffle_byte_counters_match_collector(self, mode):
        context = make_context(mode)
        rdd = context.parallelize(list(range(200)), 4).map(lambda x: (x % 10, x))
        rdd.reduce_by_key(lambda a, b: a + b).collect()
        reg = context.registry
        written = reg.counter_value("shuffle_bytes_written_total")
        assert written == context.metrics.total_shuffle_bytes()
        assert written > 0
        summary = context.metrics.summary()
        remote = reg.counter_value("shuffle_bytes_read_total", locality="remote")
        assert remote == summary["shuffle_bytes_read_remote"]
        assert reg.counter_value("shuffle_fetches_total") > 0

    def test_cache_hit_miss_counters(self):
        context = make_context("sequential")
        rdd = context.parallelize(list(range(50)), 4).map(lambda x: x * 2).cache()
        rdd.collect()  # all misses: computes and stores
        misses = context.registry.counter_value("cache_misses_total")
        assert misses == 4
        rdd.collect()  # all local hits
        assert context.registry.counter_total("cache_hits_total") == 4
        assert context.registry.counter_value("cache_misses_total") == misses
        assert context.registry.histogram_stats("block_compute_seconds")["count"] == 4

    def test_recovery_events_feed_registry(self):
        context = make_context(
            "sequential",
            chaos_seed=5,
            chaos_task_failure_prob=0.3,
            task_retry_backoff=0.0,
        )
        context.parallelize(list(range(100)), 8).map(lambda x: (x % 5, x)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        reg = context.registry
        by_kind = reg.counter_by_label("recovery_events_total", "kind")
        assert by_kind == context.metrics.recovery_summary()
        assert by_kind.get("chaos_task_failure", 0) > 0

    def test_executor_loss_recovery_kinds(self):
        context = make_context("sequential")
        rdd = context.parallelize(list(range(40)), 4).map(lambda x: x).cache()
        rdd.collect()
        context.kill_executor(context.alive_executor_ids()[0])
        rdd.collect()
        by_kind = context.registry.counter_by_label("recovery_events_total", "kind")
        assert by_kind.get("executor_lost") == 1

    def test_task_phase_histograms(self):
        context = make_context("sequential")
        session_rows = list(range(100))

        def job():
            from repro.sql.session import Session
            from repro.sql.types import LONG, Schema

            session = Session(context=context)
            df = session.create_dataframe(
                [(i,) for i in session_rows], Schema.of(("x", LONG)), "t"
            )
            idf = df.create_index("x")
            return idf.to_df().collect_tuples()

        job()
        stats = context.registry.histogram_stats("task_phase_seconds", phase="indexed_scan")
        assert stats["count"] > 0

    def test_collector_reset_clears_registry(self):
        context = make_context("sequential")
        context.parallelize([1, 2, 3], 2).collect()
        assert context.registry.counter_value("tasks_completed_total") > 0
        context.metrics.reset()
        assert context.registry.counter_value("tasks_completed_total") == 0


class TestHistogramPercentiles:
    def test_percentiles_over_known_distribution(self):
        registry = MetricsRegistry()
        for v in range(1, 101):  # 1..100
            registry.observe("latency", float(v))
        pcts = registry.histogram_percentiles("latency")
        assert pcts["p50"] == 50.0
        assert pcts["p95"] == 95.0
        assert pcts["p99"] == 99.0

    def test_unobserved_series_returns_zeros(self):
        registry = MetricsRegistry()
        assert registry.histogram_percentiles("nope") == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_sample_window_is_bounded_and_sliding(self):
        from repro.obs.registry import SAMPLE_WINDOW, HistogramData

        hist = HistogramData()
        for v in range(SAMPLE_WINDOW + 500):
            hist.observe(float(v))
        assert len(hist.samples) == SAMPLE_WINDOW
        assert hist.count == SAMPLE_WINDOW + 500
        # Oldest observations were overwritten: the window holds recent values.
        assert min(hist.samples) >= 500 - 1
        assert hist.percentile(100.0) == float(SAMPLE_WINDOW + 499)

    def test_custom_quantiles_and_labels(self):
        registry = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 4.0):
            registry.observe("lat", v, path="fastpath")
        out = registry.histogram_percentiles("lat", qs=(25.0, 100.0), path="fastpath")
        assert out["p25"] == 1.0
        assert out["p100"] == 4.0
