"""Plan cache + prepared statements: keying, reuse, epoch invalidation."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.engine.context import EngineContext
from repro.sql.parser import SQLParseError
from repro.sql.plan_cache import PlanCache, normalize_sql
from repro.sql.session import Session

from .conftest import USER_SCHEMA, make_users


def make_session(**overrides) -> Session:
    config = Config(
        default_parallelism=4, shuffle_partitions=4, row_batch_size=4096, **overrides
    )
    session = Session(context=EngineContext(config=config))
    session.create_dataframe(
        make_users(60), USER_SCHEMA, name="users"
    ).create_or_replace_temp_view("users")
    return session


class TestNormalizeSQL:
    def test_case_and_whitespace_fold(self):
        assert normalize_sql("SELECT  *\nFROM Users") == normalize_sql("select * from users")

    def test_string_literals_keep_case_and_spacing(self):
        a = normalize_sql("SELECT * FROM t WHERE name = 'Ada  B'")
        b = normalize_sql("select * from t where name = 'ada  b'")
        assert a != b
        assert "'Ada  B'" in a

    def test_escaped_quote_inside_literal(self):
        norm = normalize_sql("SELECT * FROM t WHERE name = 'O''Brien'  ")
        assert "'O''Brien'" in norm


class TestLogicalPlanCache:
    def test_identical_text_reuses_logical_plan(self):
        session = make_session()
        p1 = session.sql_logical("SELECT * FROM users WHERE uid = 3")
        p2 = session.sql_logical("select  *  from users where uid = 3")
        assert p1 is p2
        stats = session.plan_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_physical_plan_reused_after_first_execution(self):
        session = make_session()
        text = "SELECT name, SUM(score) AS s FROM users GROUP BY name"
        first = session.sql(text).collect_tuples()
        logical = session.sql_logical(text)
        physical_1 = session.plan_physical(logical)
        physical_2 = session.plan_physical(session.sql_logical(text))
        assert physical_1 is physical_2
        assert sorted(session.sql(text).collect_tuples()) == sorted(first)

    def test_catalog_change_invalidates_entry(self):
        session = make_session()
        text = "SELECT * FROM users WHERE uid = 1"
        p1 = session.sql_logical(text)
        epoch_before = session.catalog.epoch
        session.create_dataframe(
            make_users(5), USER_SCHEMA, name="other"
        ).create_or_replace_temp_view("other")
        assert session.catalog.epoch > epoch_before
        p2 = session.sql_logical(text)
        assert p1 is not p2  # stale entry evicted, re-parsed

    def test_new_indexed_version_is_visible_through_cache(self):
        """The invalidation property that matters for serving: republish a
        view at a new MVCC version and cached plans must not serve the old
        one."""
        session = make_session()
        idf = session.table("users").create_index("uid")
        idf.create_or_replace_temp_view("users")
        text = "SELECT * FROM users WHERE uid = 4242"
        assert session.sql(text).collect_tuples() == []
        child = idf.append_rows([(4242, "fresh", 1.0)])
        child.create_or_replace_temp_view("users")
        assert session.sql(text).collect_tuples() == [(4242, "fresh", 1.0)]

    def test_capacity_zero_disables_caching(self):
        session = make_session(plan_cache_capacity=0)
        text = "SELECT * FROM users WHERE uid = 1"
        p1 = session.sql_logical(text)
        p2 = session.sql_logical(text)
        assert p1 is not p2
        assert len(session.plan_cache) == 0

    def test_lru_eviction_respects_capacity(self):
        cache = PlanCache(capacity=2)
        from repro.sql.plan_cache import CachedPlan

        entries = [CachedPlan(f"q{i}", 0, object()) for i in range(3)]
        for e in entries:
            cache.store(e)
        assert len(cache) == 2
        assert cache.lookup("q0", 0) is None  # oldest evicted
        assert cache.lookup("q2", 0) is entries[2]

    def test_registry_counters_flow(self):
        session = make_session()
        text = "SELECT * FROM users WHERE uid = 2"
        session.sql_logical(text)
        session.sql_logical(text)
        registry = session.context.registry
        assert registry.counter_value("plan_cache_requests_total", outcome="miss") >= 1
        assert registry.counter_value("plan_cache_requests_total", outcome="hit") >= 1


class TestPreparedStatements:
    def test_bind_and_execute_multiple_times(self):
        session = make_session()
        statement = session.prepare("SELECT * FROM users WHERE uid = ?")
        rows = {r[0]: r for r in make_users(60)}
        for uid in (0, 7, 59):
            assert statement.execute([uid]) == [rows[uid]]
        assert statement.execute([999]) == []

    def test_multiple_parameters(self):
        session = make_session()
        statement = session.prepare(
            "SELECT name FROM users WHERE uid = ? AND score > ?"
        )
        reference = session.sql(
            "SELECT name FROM users WHERE uid = 5 AND score > 0"
        ).collect_tuples()
        assert statement.execute([5, 0]) == reference
        assert statement.execute([5, 1e9]) == []

    def test_wrong_arity_rejected(self):
        session = make_session()
        statement = session.prepare("SELECT * FROM users WHERE uid = ?")
        with pytest.raises(ValueError):
            statement.execute([])
        with pytest.raises(ValueError):
            statement.execute([1, 2])

    def test_template_parse_is_cached(self):
        session = make_session()
        s1 = session.prepare("SELECT * FROM users WHERE uid = ?")
        s2 = session.prepare("select * from users where uid = ?")
        assert s1.template is s2.template

    def test_plain_sql_rejects_parameter_marker(self):
        session = make_session()
        with pytest.raises(SQLParseError):
            session.sql("SELECT * FROM users WHERE uid = ?")

    def test_prepared_fast_path_equivalence_through_indexed_view(self):
        session = make_session()
        idf = session.table("users").create_index("uid")
        idf.create_or_replace_temp_view("users")
        statement = session.prepare("SELECT name, score FROM users WHERE uid = ?")
        for uid in (1, 30, 59):
            assert statement.execute([uid]) == session.sql(
                f"SELECT name, score FROM users WHERE uid = {uid}"
            ).collect_tuples()
