"""Stream-window join over the serving tier: monotone, duplicate-free,
version-consistent output under concurrent ingest.

Satellite (b): N reader threads observing :meth:`StreamWindowJoin.results`
while an :class:`IngestLoop` appends and republishes must see output that
only grows (prefix-consistent), never repeats a (probe, build) pair, and
whose every emission was computed against exactly one MVCC version.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.config import Config
from repro.serve.ingest import IngestLoop
from repro.serve.server import QueryServer, ServeConfig
from repro.serve.stream_join import StreamWindowJoin, WindowSpec
from repro.sql.session import Session
from repro.sql.types import LONG, Schema

EVENT_SCHEMA = Schema.of(("ts", LONG), ("val", LONG))
DOMAIN = 1000
WINDOW = WindowSpec(before=5, after=5)


def make_server():
    session = Session(config=Config(default_parallelism=4, shuffle_partitions=4))
    return session, QueryServer(session, ServeConfig())


def window_oracle(probes, build_rows):
    pairs = set()
    for pid, probe in enumerate(probes):
        for row in build_rows:
            if probe[0] - WINDOW.before <= row[0] <= probe[0] + WINDOW.after:
                pairs.add((pid, row))
    return pairs


class TestWindowSpec:
    def test_range_is_inclusive_both_sides(self):
        kr = WindowSpec(before=3, after=7).range_for(10)
        assert kr.matches(7) and kr.matches(17)
        assert not kr.matches(6) and not kr.matches(18)

    def test_asymmetric_window(self):
        kr = WindowSpec(before=0, after=2).range_for(5)
        assert not kr.matches(4) and kr.matches(5) and kr.matches(7)


class TestStreamWindowJoin:
    def test_single_pass_matches_oracle(self):
        session, server = make_server()
        rng = random.Random(11)
        rows = [(rng.randrange(DOMAIN), i) for i in range(300)]
        idf = session.create_dataframe(rows, EVENT_SCHEMA).create_index("ts").cache_index()
        server.publish("events", idf)
        join = StreamWindowJoin(server, "events", WINDOW)
        probes = [(rng.randrange(DOMAIN), 10_000 + i) for i in range(20)]
        join.add_probes(probes)
        emission = join.probe()
        got = {(probes.index(p), b) for p, b in emission.pairs}
        assert got == window_oracle(probes, rows)
        assert emission.version == idf.version
        server.shutdown()

    def test_republish_emits_only_the_delta(self):
        session, server = make_server()
        rows = [(i, i) for i in range(0, 100, 10)]
        idf = session.create_dataframe(rows, EVENT_SCHEMA).create_index("ts").cache_index()
        server.publish("events", idf)
        join = StreamWindowJoin(server, "events", WINDOW)
        join.add_probes([(50, 0)])
        first = join.probe()
        assert {b for _, b in first.pairs} == {(50, 50)}
        # Re-probing the same version emits nothing new.
        assert join.probe().pairs == []
        server.publish("events", idf.append_rows([(47, 1), (53, 2), (70, 3)]))
        second = join.probe()
        assert {b for _, b in second.pairs} == {(47, 1), (53, 2)}
        assert len(join.results()) == 3

    def test_concurrent_ingest_monotone_duplicate_free(self):
        """The satellite's headline property, end to end."""
        session, server = make_server()
        rng = random.Random(23)
        base = [(rng.randrange(DOMAIN), i) for i in range(400)]
        idf = session.create_dataframe(base, EVENT_SCHEMA).create_index("ts").cache_index()
        server.publish("events", idf)

        join = StreamWindowJoin(server, "events", WINDOW)
        probes = [(rng.randrange(DOMAIN), 10_000 + i) for i in range(30)]
        join.add_probes(probes)
        join.probe()

        batches = [
            [(rng.randrange(DOMAIN), 1000 + i * 50 + j) for j in range(50)]
            for i in range(6)
        ]
        loop = IngestLoop(server, "events", batches, stream_joins=[join])

        stop = threading.Event()
        violations: list[str] = []

        def reader():
            prev: list[tuple] = []
            while not stop.is_set():
                cur = join.results()
                if cur[: len(prev)] != prev:
                    violations.append("output shrank or reordered")
                    return
                prev = cur

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        loop.start()
        loop.join(timeout=120)
        assert not loop.is_alive() and loop.error is None
        join.probe()  # final pass over the last published version
        stop.set()
        for t in readers:
            t.join()
        assert violations == []

        pairs = join.results()
        assert len(pairs) == len(set(pairs)), "duplicate join results emitted"
        all_rows = base + [r for b in batches for r in b]
        got = {(probes.index(p), b) for p, b in pairs}
        assert got == window_oracle(probes, all_rows)

        emissions = join.emissions()
        versions = [e.version for e in emissions]
        assert versions == sorted(versions), "emission versions regressed"
        # Every emission was computed against exactly one pinned version,
        # and the ingest published versions 1..len(batches).
        assert set(versions) <= set(range(len(batches) + 1))

    def test_metrics_tick(self):
        session, server = make_server()
        idf = session.create_dataframe([(5, 0)], EVENT_SCHEMA).create_index("ts").cache_index()
        server.publish("events", idf)
        join = StreamWindowJoin(server, "events", WINDOW)
        join.add_probes([(5, 1)])
        join.probe()
        reg = session.context.registry
        assert reg.counter_total("stream_join_probes_total") == 1
        assert reg.counter_total("stream_join_pairs_total") == 1


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-x", "-q"])
