"""EXPLAIN ANALYZE correctness: observed counts must match reality.

The meter wraps every physical operator's output RDD; the properties that
pin it down:

* the root operator's observed row count equals ``len(collect())`` — on
  hand-built plans, on indexed plans, and on the SNB short-read suite;
* counts are monotonically consistent down the tree: a Filter emits at most
  its child's rows, a Project exactly its child's rows;
* re-running the same node (task retries, speculative twins) must not
  inflate counts — per-(node, split) results overwrite;
* metering is scoped: after ``analyze()`` the session runs unmetered.
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.sql.functions import col, count, sum_
from repro.sql.physical import FilterExec, LimitExec, ProjectExec
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema
from repro.workloads.snb import (
    generate_snb_edges,
    generate_snb_persons,
    sample_probe_keys,
    short_queries,
)
from repro.workloads.snb import EDGE_SCHEMA as SNB_EDGE_SCHEMA
from repro.workloads.snb import PERSON_SCHEMA as SNB_PERSON_SCHEMA

MODES = ("sequential", "threads")

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))
DIM_SCHEMA = Schema.of(("node", LONG), ("label", STRING))


def make_session(mode: str = "sequential") -> Session:
    return Session(
        config=Config(default_parallelism=4, shuffle_partitions=4, scheduler_mode=mode)
    )


@pytest.fixture()
def session():
    return make_session()


@pytest.fixture()
def edges_df(session):
    rows = [(i % 25, (i * 7) % 25, float(i % 10) / 10) for i in range(400)]
    return session.create_dataframe(rows, EDGE_SCHEMA, "edges")


@pytest.fixture()
def dims_df(session):
    return session.create_dataframe(
        [(k, f"label{k % 4}") for k in range(25)], DIM_SCHEMA, "dims"
    )


class TestRootCounts:
    @pytest.mark.parametrize("mode", MODES)
    def test_filter_root_count_matches_collect(self, mode):
        session = make_session(mode)
        rows = [(i % 25, i % 7, float(i)) for i in range(400)]
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges").where(col("src") < 5)
        analysis = df.analyze()
        assert analysis.node_stats(analysis.physical).rows == len(df.collect_tuples())
        assert analysis.node_stats(analysis.physical).rows == len(analysis.rows)

    def test_join_root_count_matches_collect(self, edges_df, dims_df):
        joined = edges_df.join(dims_df, on=("src", "node")).select("src", "label", "w")
        analysis = joined.analyze()
        assert analysis.node_stats(analysis.physical).rows == len(joined.collect_tuples())

    def test_aggregate_root_count_matches_collect(self, edges_df):
        agg = edges_df.group_by("src").agg(count().alias("n"), sum_("w").alias("s"))
        analysis = agg.analyze()
        assert analysis.node_stats(analysis.physical).rows == len(agg.collect_tuples())

    def test_limit_root_count_matches_collect(self, edges_df):
        limited = edges_df.order_by("w", "dst", "src").limit(7)
        analysis = limited.analyze()
        assert analysis.node_stats(analysis.physical).rows == 7

    def test_indexed_plan_root_count_matches_collect(self, edges_df, dims_df):
        idf = edges_df.create_index("src")
        q = idf.to_df().where(col("src") == 3)
        analysis = q.analyze()
        assert analysis.node_stats(analysis.physical).rows == len(q.collect_tuples())
        joined = idf.to_df().join(dims_df, on=("src", "node")).select("src", "label")
        analysis = joined.analyze()
        assert analysis.node_stats(analysis.physical).rows == len(joined.collect_tuples())


class TestTreeConsistency:
    def test_filter_and_project_monotonicity(self, session, edges_df):
        q = edges_df.where(col("w") > 0.3).select("dst", (col("w") * 2).alias("w2"))
        analysis = q.analyze()
        for node, stats in analysis.nodes():
            if isinstance(node, FilterExec):
                child = analysis.node_stats(node.child)
                assert stats.rows <= child.rows
            if isinstance(node, ProjectExec):
                child = analysis.node_stats(node.child)
                assert stats.rows == child.rows
            if isinstance(node, LimitExec):
                assert stats.rows <= node.n

    def test_every_node_has_stats_and_rendering(self, edges_df, dims_df):
        joined = edges_df.join(dims_df, on=("src", "node")).where(col("w") > 0.2)
        analysis = joined.analyze()
        seen = dict(analysis.nodes())
        assert analysis.physical in seen
        text = analysis.text()
        assert "analyzed:" in text
        # Every operator line is decorated with actuals.
        for line in text.splitlines()[1:]:
            assert "[rows=" in line, line

    def test_rows_per_second_is_positive(self, edges_df):
        analysis = edges_df.where(col("src") < 10).analyze()
        root = analysis.node_stats(analysis.physical)
        assert root.rows > 0
        assert root.rows_per_second is None or root.rows_per_second > 0


class TestScoping:
    def test_meter_removed_after_analyze(self, session, edges_df):
        edges_df.where(col("src") < 5).analyze()
        assert session.exec_meter is None
        # A later un-analyzed query runs clean.
        assert edges_df.where(col("src") < 5).collect_tuples()

    def test_meter_restored_on_error(self, session):
        bad = session.create_dataframe([(1, 2, 0.5)], EDGE_SCHEMA, "edges").where(
            col("nope") == 1
        )
        with pytest.raises(Exception):
            bad.analyze()
        assert session.exec_meter is None

    def test_retried_splits_do_not_inflate_counts(self):
        session = Session(
            config=Config(
                default_parallelism=4,
                shuffle_partitions=4,
                chaos_seed=13,
                chaos_task_failure_prob=0.25,
                task_retry_backoff=0.0,
            )
        )
        rows = [(i % 25, i % 7, float(i)) for i in range(400)]
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges").where(col("src") < 12)
        expected = len(df.collect_tuples())
        analysis = df.analyze()
        assert analysis.node_stats(analysis.physical).rows == expected


class TestSqlSurface:
    def test_sql_explain_plain_and_analyze(self, session, edges_df):
        edges_df.create_or_replace_temp_view("edges")
        plain = session.sql_explain("SELECT src, w FROM edges WHERE src < 5")
        assert "rows=" not in plain
        analyzed = session.sql_explain("SELECT src, w FROM edges WHERE src < 5", analyze=True)
        assert "[rows=" in analyzed
        n = len(session.sql("SELECT src, w FROM edges WHERE src < 5").collect_tuples())
        assert f"analyzed: {n} rows" in analyzed

    def test_dataframe_explain_analyze_flag(self, edges_df):
        assert "[rows=" not in edges_df.explain()
        assert "[rows=" in edges_df.explain(analyze=True)


class TestSnbWorkload:
    @pytest.mark.parametrize("mode", MODES)
    def test_short_reads_counts_match_collect(self, mode):
        """Acceptance criterion: analyze counts == collected counts on SNB."""
        session = make_session(mode)
        edges = generate_snb_edges(2)
        persons = generate_snb_persons(2)
        edges_df = session.create_dataframe(edges, SNB_EDGE_SCHEMA, "edges")
        persons_df = session.create_dataframe(persons, SNB_PERSON_SCHEMA, "persons")
        idf = edges_df.create_index("edge_source")
        idf.create_or_replace_temp_view("edges")
        persons_df.cache().create_or_replace_temp_view("persons")
        pid = sample_probe_keys(edges, 1, seed=5)[0]
        for q in short_queries():
            text = q.sql(pid)
            expected = len(session.sql(text).collect_tuples())
            analysis = session.execute_analyzed(session.sql(text).plan)
            got = analysis.node_stats(analysis.physical).rows
            assert got == expected, f"{q.name}: analyze said {got}, collect said {expected}"
            assert len(analysis.rows) == expected


class TestRangeScanPushdown:
    """Ordered-index pushdown (DESIGN.md §15): a recognized range predicate
    must *read* strictly fewer rows than the full-scan plan for the same
    query, and the meter + metrics must both show it."""

    def test_range_scan_reads_strictly_fewer_rows_than_full_scan(self, session):
        from repro.indexed.operators import IndexedRangeScanExec

        rows = [(i % 100, i, float(i % 10) / 10) for i in range(1000)]
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        idf = df.create_index("src")
        matched = sum(1 for r in rows if 10 <= r[0] <= 14)

        indexed_q = idf.to_df().where((col("src") >= 10) & (col("src") <= 14))
        analysis = indexed_q.analyze()
        range_nodes = [
            (node, stats)
            for node, stats in analysis.nodes()
            if isinstance(node, IndexedRangeScanExec)
        ]
        assert len(range_nodes) == 1, "range predicate was not pushed down"
        _, range_stats = range_nodes[0]
        assert range_stats.rows == matched

        # Uncached baseline: Scan -> Filter, so the leaf meters every row read.
        vanilla_q = df.where((col("src") >= 10) & (col("src") <= 14))
        vanilla = vanilla_q.analyze()
        leaf_rows = max(
            stats.rows
            for node, stats in vanilla.nodes()
            if not isinstance(node, (FilterExec, ProjectExec, LimitExec))
        )
        assert leaf_rows == len(rows)
        assert range_stats.rows < leaf_rows  # the acceptance criterion
        assert len(analysis.rows) == len(vanilla.rows) == matched

    def test_scanned_vs_matched_metrics(self, session):
        rows = [(i % 100, i, 0.0) for i in range(1000)]
        idf = session.create_dataframe(rows, EDGE_SCHEMA, "edges").create_index("src")
        idf.to_df().where((col("src") >= 10) & (col("src") <= 14)).collect_tuples()
        reg = session.context.registry
        scanned = reg.counter_total("ordered_index_rows_scanned_total")
        assert reg.counter_total("ordered_index_range_scans_total") >= 1
        assert reg.counter_total("ordered_index_rows_matched_total") == scanned == 50
        assert scanned < len(rows)  # the index sought, it did not scan
        assert reg.histogram_stats("ordered_index_range_selectivity")["count"] >= 1
