"""AtomicReference / AtomicLong: CAS semantics and thread safety."""

import threading

from repro.utils.atomic import AtomicLong, AtomicReference


class TestAtomicReference:
    def test_get_set(self):
        ref = AtomicReference(1)
        assert ref.get() == 1
        ref.set(2)
        assert ref.get() == 2

    def test_initial_none(self):
        assert AtomicReference().get() is None

    def test_cas_succeeds_on_identity(self):
        sentinel = object()
        ref = AtomicReference(sentinel)
        assert ref.compare_and_set(sentinel, "new")
        assert ref.get() == "new"

    def test_cas_fails_on_wrong_expect(self):
        ref = AtomicReference("a")
        assert not ref.compare_and_set("b", "c")
        assert ref.get() == "a"

    def test_cas_uses_identity_not_equality(self):
        # Two equal-but-distinct objects must NOT satisfy the CAS: the cTrie
        # relies on identity semantics.
        ref = AtomicReference([1, 2])
        assert not ref.compare_and_set([1, 2], "new")

    def test_get_and_set(self):
        ref = AtomicReference("old")
        assert ref.get_and_set("new") == "old"
        assert ref.get() == "new"

    def test_concurrent_cas_exactly_one_winner(self):
        start = object()
        ref = AtomicReference(start)
        wins = []
        barrier = threading.Barrier(8)

        def racer(i: int) -> None:
            barrier.wait()
            if ref.compare_and_set(start, i):
                wins.append(i)

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert ref.get() == wins[0]


class TestAtomicLong:
    def test_increment(self):
        c = AtomicLong()
        assert c.increment_and_get() == 1
        assert c.get_and_increment() == 1
        assert c.get() == 2

    def test_add_and_cas(self):
        c = AtomicLong(10)
        c.add(5)
        assert c.get() == 15
        assert c.compare_and_set(15, 0)
        assert not c.compare_and_set(15, 1)
        assert c.get() == 0

    def test_concurrent_increments_lose_nothing(self):
        c = AtomicLong()

        def bump() -> None:
            for _ in range(1000):
                c.increment_and_get()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.get() == 8000
