"""Optimizer rules: rewrites fire correctly and never change results."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.analysis import Analyzer
from repro.sql.expressions import And, BinaryOp, Column, Literal
from repro.sql.functions import col, lit
from repro.sql.logical import Filter, Join, Project, Relation
from repro.sql.optimizer import (
    Optimizer,
    combine_filters,
    constant_folding,
    push_filter_through_join,
    push_filter_through_project,
)
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

SCHEMA_T = Schema.of(("id", LONG), ("name", STRING), ("v", DOUBLE))
SCHEMA_U = Schema.of(("uid", LONG), ("city", STRING))


def relation_t(rows=None):
    return Relation("t", SCHEMA_T, rows=rows if rows is not None else [])


def relation_u(rows=None):
    return Relation("u", SCHEMA_U, rows=rows if rows is not None else [])


class TestRules:
    def test_combine_filters(self):
        plan = Filter(col("id") > 1, Filter(col("v") < 2, relation_t()))
        out = combine_filters(plan)
        assert isinstance(out, Filter)
        assert isinstance(out.condition, And)
        assert isinstance(out.child, Relation)

    def test_constant_folding(self):
        plan = Filter(col("id") > (lit(2) + lit(3)), relation_t())
        out = constant_folding(plan)
        comparison = out.condition
        assert isinstance(comparison.right, Literal)
        assert comparison.right.value == 5

    def test_push_filter_through_project_passthrough(self):
        plan = Filter(col("id") > 1, Project([col("id"), col("v")], relation_t()))
        out = push_filter_through_project(plan)
        assert isinstance(out, Project)
        assert isinstance(out.child, Filter)

    def test_push_filter_blocked_by_computed_column(self):
        plan = Filter(
            Column("double_v") > 1,
            Project([(col("v") * 2).alias("double_v")], relation_t()),
        )
        assert push_filter_through_project(plan) is None

    def test_push_filter_through_join_left_side(self):
        join = Join(relation_t(), relation_u(), [col("id")], [col("uid")])
        plan = Filter(col("v") > 1, join)
        out = push_filter_through_join(plan)
        assert isinstance(out, Join)
        assert isinstance(out.left, Filter)
        assert isinstance(out.right, Relation)

    def test_push_filter_through_join_both_sides_and_residual(self):
        join = Join(relation_t(), relation_u(), [col("id")], [col("uid")])
        cond = (col("v") > 1) & (col("city") == "X") & (col("id") > col("uid"))
        plan = Filter(cond, join)
        out = push_filter_through_join(plan)
        # id > uid spans both sides: stays above the join.
        assert isinstance(out, Filter)
        assert isinstance(out.child, Join)
        assert isinstance(out.child.left, Filter)
        assert isinstance(out.child.right, Filter)

    def test_shadowed_right_name_not_pushed_right(self):
        # Both relations have "id": a filter naming "id" resolves to the
        # left side of the join output and must not be pushed right.
        left = Relation("a", Schema.of(("id", LONG), ("x", DOUBLE)), rows=[])
        right = Relation("b", Schema.of(("id", LONG), ("y", DOUBLE)), rows=[])
        join = Join(left, right, [col("x")], [col("y")])
        out = push_filter_through_join(Filter(col("id") > 1, join))
        assert isinstance(out, Join)
        assert isinstance(out.left, Filter)
        assert isinstance(out.right, Relation)


class TestFixedPoint:
    def test_stacked_rewrites_reach_fixed_point(self):
        plan = Filter(
            col("id") > 1,
            Filter(
                col("v") < lit(1) + lit(1),
                Project([col("id"), col("v")], relation_t()),
            ),
        )
        out = Optimizer().optimize(plan)
        # Expect Project(Filter(Relation)) with folded constant.
        assert isinstance(out, Project)
        assert isinstance(out.child, Filter)
        assert isinstance(out.child.child, Relation)

    def test_extra_rules_run_first(self):
        fired = []

        def spy_rule(plan):
            fired.append(type(plan).__name__)
            return None

        Optimizer(extra_rules=[spy_rule]).optimize(Filter(col("id") > 1, relation_t()))
        assert "Filter" in fired


class TestOptimizationPreservesResults:
    """Property: for random plans, optimized and unoptimized agree."""

    @staticmethod
    def _run(session, plan, optimize: bool):
        analyzed = session.analyzer.analyze(plan)
        if optimize:
            analyzed = session.analyzer.analyze(Optimizer().optimize(analyzed))
        from repro.sql.planner import Planner

        return sorted(Planner(session).plan(analyzed).execute().collect())

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_filter_project_join_equivalence(self, seed):
        rng = random.Random(seed)
        rows_t = [
            (i, f"n{i % 5}", round(rng.random() * 10, 3)) for i in range(rng.randint(0, 40))
        ]
        rows_u = [(i, f"c{i % 3}") for i in range(rng.randint(0, 20))]
        session = Session()
        t = Relation("t", SCHEMA_T, rows=rows_t)
        u = Relation("u", SCHEMA_U, rows=rows_u)
        join = Join(t, u, [col("id")], [col("uid")])
        cond = (col("v") > rng.random() * 10) & (col("uid") >= rng.randint(0, 10))
        plan = Filter(cond, join)
        plain = self._run(session, plan, optimize=False)
        optimized = self._run(session, plan, optimize=True)
        assert plain == optimized
