"""Batch-at-a-time decode kernels: ``decode_all`` / ``decode_chain``.

These are the compiled full-batch scanners behind ``scan_rows``; they must
agree byte-for-byte with the per-row generic decoder across schema shapes
(fixed-only, trailing string, interior strings, nullable fields) and must
be bypassed safely when MVCC divergence breaks prefix contiguity.
"""

from __future__ import annotations

import pytest

from repro.indexed.partition import IndexedPartition
from repro.indexed.row_codec import RowCodec
from repro.sql.types import BOOLEAN, DOUBLE, INTEGER, LONG, STRING, Schema

FIXED_SCHEMA = Schema.of(("a", LONG), ("b", INTEGER), ("c", DOUBLE), ("d", BOOLEAN))
TRAILING_STR = Schema.of(("id", LONG), ("score", DOUBLE), ("name", STRING))
INTERIOR_STR = Schema.of(("id", LONG), ("name", STRING), ("score", DOUBLE), ("tag", STRING))


def fixed_rows(n: int) -> list[tuple]:
    return [(i, i % 1000, i * 0.5, i % 3 == 0) for i in range(n)]


def trailing_rows(n: int) -> list[tuple]:
    return [(i, i * 1.25, f"name-{i % 97}") for i in range(n)]


def interior_rows(n: int) -> list[tuple]:
    return [(i, f"user{i % 31}", i * 0.125, f"t{i % 7}" * (i % 4 + 1)) for i in range(n)]


def encode_batch(codec: RowCodec, rows: list[tuple]) -> bytes:
    out = bytearray()
    for row in rows:
        out += codec.encode(row, prev_ptr=(1 << 64) - 1)
    return bytes(out)


class TestDecodeAll:
    @pytest.mark.parametrize(
        ("schema", "maker"),
        [
            (FIXED_SCHEMA, fixed_rows),
            (TRAILING_STR, trailing_rows),
            (INTERIOR_STR, interior_rows),
        ],
        ids=["fixed-only", "trailing-string", "interior-strings"],
    )
    def test_matches_per_row_decode(self, schema: Schema, maker) -> None:
        codec = RowCodec(schema)
        rows = maker(257)
        buf = encode_batch(codec, rows)
        # Reference: walk record-by-record with the per-row decoder.
        expected = []
        pos = 0
        while pos < len(buf):
            row, _ptr, size = codec.decode(buf, pos)
            expected.append(row)
            pos += size
        assert codec.decode_all(buf) == expected == rows

    def test_honors_end_watermark(self) -> None:
        codec = RowCodec(FIXED_SCHEMA)
        rows = fixed_rows(10)
        buf = encode_batch(codec, rows)
        # Visible prefix only: decoding must stop at the watermark even
        # though more bytes (a divergent sibling's rows) follow.
        _row, _ptr, first_size = codec.decode(buf, 0)
        assert codec.decode_all(buf, first_size) == rows[:1]
        assert codec.decode_all(buf, len(buf)) == rows

    def test_null_rows_fall_back_to_generic(self) -> None:
        codec = RowCodec(TRAILING_STR)
        rows = [(1, 0.5, "x"), (2, None, "y"), (3, 1.5, None), (None, None, None)]
        buf = encode_batch(codec, rows)
        assert codec.decode_all(buf) == rows

    def test_fixed_schema_nulls_break_alignment(self) -> None:
        """Null records shorten fixed-width rows; the aligned iter_unpack
        fast path must detect this and take the guarded loop instead."""
        codec = RowCodec(FIXED_SCHEMA)
        rows = [(1, 2, 3.0, True), (4, None, 5.0, False), (None, 6, None, None), (7, 8, 9.0, True)]
        buf = encode_batch(codec, rows)
        assert codec.decode_all(buf) == rows
        # Trailing null record (shorter than the prefix struct).
        tail = encode_batch(codec, [(1, 2, 3.0, True), (None, None, None, None)])
        assert codec.decode_all(tail) == [(1, 2, 3.0, True), (None, None, None, None)]

    def test_empty_buffer(self) -> None:
        codec = RowCodec(FIXED_SCHEMA)
        assert codec.decode_all(b"") == []


class TestDecodeChain:
    def test_walks_backward_pointers(self) -> None:
        part = IndexedPartition(TRAILING_STR, key_column="id", batch_size=1 << 14)
        for i in range(5):
            part.insert_row((7, float(i), f"v{i}"))
        ptr = part.ctrie.lookup(part.index_key(7), (1 << 64) - 1)
        rows = part.codec.decode_chain(part.batches, ptr)
        # Chain yields newest-first.
        assert rows == [(7, float(i), f"v{i}") for i in reversed(range(5))]


class TestScanRows:
    def test_scan_equals_iter_rows(self) -> None:
        part = IndexedPartition(INTERIOR_STR, key_column="id", batch_size=1 << 12)
        rows = interior_rows(500)
        part.insert_rows(rows)
        assert part.contiguous
        assert sorted(part.scan_rows()) == sorted(part.iter_rows()) == sorted(rows)

    def test_divergent_sibling_degrades_to_chain_walk(self) -> None:
        """Two snapshots of one parent appending into the shared tail batch:
        the second writer loses contiguity and must fall back, and neither
        sibling sees the other's rows."""
        parent = IndexedPartition(FIXED_SCHEMA, key_column="a", batch_size=1 << 14)
        base = fixed_rows(50)
        parent.insert_rows(base)
        c1 = parent.snapshot(1)
        c2 = parent.snapshot(2)
        extra1 = [(1000 + i, i, 0.0, False) for i in range(10)]
        extra2 = [(2000 + i, i, 1.0, True) for i in range(10)]
        c1.insert_rows(extra1)  # extends the shared tail at the watermark
        c2.insert_rows(extra2)  # writes past c1's rows -> divergent
        assert c1.contiguous
        assert not c2.contiguous
        assert sorted(c1.scan_rows()) == sorted(base + extra1)
        assert sorted(c2.scan_rows()) == sorted(base + extra2)
        assert sorted(parent.scan_rows()) == sorted(base)

    def test_multi_batch_scan(self) -> None:
        # Batch size small enough to force several batches.
        part = IndexedPartition(TRAILING_STR, key_column="id", batch_size=1 << 10)
        rows = trailing_rows(300)
        part.insert_rows(rows)
        assert len(part.batches) > 1
        assert sorted(part.scan_rows()) == sorted(rows)
