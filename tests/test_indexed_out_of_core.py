"""Out-of-core row batches: spill/fault transparency and partition spilling."""

import pytest

from repro.indexed.out_of_core import (
    SpillableRowBatch,
    fault_count,
    resident_bytes,
    spill_partition,
)
from repro.indexed.partition import IndexedPartition
from repro.sql.types import DOUBLE, LONG, Schema

SCHEMA = Schema.of(("k", LONG), ("v", LONG), ("w", DOUBLE))


class TestSpillableRowBatch:
    def test_behaves_like_row_batch(self):
        b = SpillableRowBatch(64)
        assert b.append(b"hello") == 0
        assert b.append(b"x" * 60) is None
        assert bytes(b.buf[:5]) == b"hello"
        assert b.used == 5

    def test_spill_and_fault_roundtrip(self, tmp_path):
        b = SpillableRowBatch(64, spill_dir=str(tmp_path))
        b.append(b"payload")
        freed = b.spill()
        assert freed == 64
        assert not b.resident
        # Reading faults the bytes back in, identically.
        assert bytes(b.buf[:7]) == b"payload"
        assert b.resident
        assert b.faults == 1
        b.discard_file()

    def test_spill_idempotent(self, tmp_path):
        b = SpillableRowBatch(32, spill_dir=str(tmp_path))
        b.append(b"abc")
        assert b.spill() == 32
        assert b.spill() == 0  # already spilled

    def test_writes_rejected_while_spilled(self, tmp_path):
        b = SpillableRowBatch(32, spill_dir=str(tmp_path))
        b.append(b"abc")
        b.spill()
        with pytest.raises(RuntimeError):
            b.reserve(4)
        with pytest.raises(RuntimeError):
            b.write(0, b"x")

    def test_writable_again_after_fault(self, tmp_path):
        b = SpillableRowBatch(32, spill_dir=str(tmp_path))
        b.append(b"abc")
        b.spill()
        b.ensure_resident()
        assert b.append(b"de") == 3

    def test_from_batch_copies(self):
        from repro.indexed.row_batch import RowBatch

        src = RowBatch(64)
        src.append(b"data")
        clone = SpillableRowBatch.from_batch(src)
        assert bytes(clone.buf[:4]) == b"data"
        assert clone.used == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SpillableRowBatch(0)


class TestSpillPartition:
    def _partition(self, n=400):
        p = IndexedPartition(SCHEMA, "k", batch_size=512)
        p.insert_rows([(i % 25, i, float(i)) for i in range(n)])
        assert len(p.batches) > 3  # several sealed batches
        return p

    def test_lookups_survive_spilling(self, tmp_path):
        p = self._partition()
        reference = {k: p.lookup(k) for k in range(25)}
        freed = spill_partition(p, spill_dir=str(tmp_path))
        assert freed > 0
        for k in range(25):
            assert p.lookup(k) == reference[k]
        assert fault_count(p) > 0  # cold batches were faulted in

    def test_keep_tail_leaves_appends_working(self, tmp_path):
        p = self._partition()
        spill_partition(p, spill_dir=str(tmp_path), keep_tail=True)
        p.insert_row((7, 12345, 1.0))  # tail still writable
        assert p.lookup(7)[0][1] == 12345

    def test_resident_bytes_shrink(self, tmp_path):
        p = self._partition()
        before = resident_bytes(p)
        spill_partition(p, spill_dir=str(tmp_path))
        # Lookups not yet run: only the tail is resident.
        assert resident_bytes(p) < before

    def test_iter_rows_after_spill(self, tmp_path):
        p = self._partition(200)
        want = sorted(p.iter_rows())
        spill_partition(p, spill_dir=str(tmp_path), keep_tail=False)
        assert sorted(p.iter_rows()) == want

    def test_snapshot_shares_spilled_batches(self, tmp_path):
        p = self._partition(200)
        spill_partition(p, spill_dir=str(tmp_path))
        child = p.snapshot(1)
        child.insert_row((3, 999, 0.0))
        assert child.lookup(3)[0][1] == 999
        # Parent's view is unchanged and still readable from disk.
        assert all(r[1] != 999 for r in p.lookup(3))


class TestFileLifecycle:
    """Spill temp files must never outlive the data they cache."""

    def test_finalizer_unlinks_on_gc(self, tmp_path):
        """Leak regression: dropping the last reference to a spilled batch
        removes its .spill file (weakref.finalize path)."""
        import gc

        b = SpillableRowBatch(64, spill_dir=str(tmp_path))
        b.append(b"gone soon")
        b.spill()
        assert len(list(tmp_path.iterdir())) == 1
        del b
        gc.collect()
        assert list(tmp_path.iterdir()) == []

    def test_discard_file_idempotent(self, tmp_path):
        b = SpillableRowBatch(64, spill_dir=str(tmp_path))
        b.append(b"abc")
        b.spill()
        b.ensure_resident()
        b.discard_file()
        b.discard_file()  # second call is a no-op
        assert list(tmp_path.iterdir()) == []

    def test_spill_creates_missing_dir(self, tmp_path):
        target = tmp_path / "nested" / "spill"
        b = SpillableRowBatch(64, spill_dir=str(target))
        b.append(b"abc")
        assert b.spill() == 64
        assert len(list(target.iterdir())) == 1
        b.discard_file()

    def test_respill_after_fault_and_write_serves_fresh_bytes(self, tmp_path):
        """Stale re-spill regression: fault in, append, re-spill — the file
        must hold the *new* bytes, not the pre-fault ones."""
        b = SpillableRowBatch(64, spill_dir=str(tmp_path))
        b.append(b"old")
        b.spill()
        b.ensure_resident()
        b.append(b"NEW")          # invalidates the cached file
        assert b.spill() == 64    # rewrites, not reuses
        assert bytes(b.buf[:6]) == b"oldNEW"

    def test_respill_after_overwrite_serves_fresh_bytes(self, tmp_path):
        b = SpillableRowBatch(64, spill_dir=str(tmp_path))
        b.append(b"old")
        b.spill()
        b.ensure_resident()
        b.write(0, b"NEW")        # in-place overwrite, same invalidation
        b.spill()
        assert bytes(b.buf[:3]) == b"NEW"

    def test_untouched_respill_reuses_file(self, tmp_path):
        """The reuse fast path stays: fault-in with no writes re-spills
        without rewriting."""
        b = SpillableRowBatch(64, spill_dir=str(tmp_path))
        b.append(b"stable")
        b.spill()
        (path,) = list(tmp_path.iterdir())
        mtime = path.stat().st_mtime_ns
        b.ensure_resident()
        b.spill()
        (path2,) = list(tmp_path.iterdir())
        assert path2 == path and path.stat().st_mtime_ns == mtime

    def test_block_manager_clear_removes_resident_files(self, tmp_path):
        """BlockManager.clear() unlinks files of faulted-in (resident)
        batches instead of leaving stale caches behind."""
        from repro.engine.block_manager import BlockManager

        p = IndexedPartition(SCHEMA, "k", batch_size=512)
        p.insert_rows([(i % 25, i, float(i)) for i in range(400)])
        spill_partition(p, spill_dir=str(tmp_path))
        for k in range(25):
            p.lookup(k)  # fault everything back in
        assert len(list(tmp_path.iterdir())) > 0
        bm = BlockManager("m0e0")
        bm.put((1, 0), [p])
        bm.clear()
        assert list(tmp_path.iterdir()) == []
