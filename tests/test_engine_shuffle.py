"""ShuffleManager internals: registration, combining, loss, fetch accounting."""

import pytest

from repro.config import Config
from repro.engine.context import EngineContext
from repro.engine.dependencies import MapSideCombiner, ShuffleDependency
from repro.engine.partition import TaskContext
from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import FetchFailedError


@pytest.fixture()
def ctx():
    return EngineContext(config=Config(default_parallelism=2, shuffle_partitions=2))


def _ctx_for(ctx, executor_id=None):
    executor_id = executor_id or ctx.alive_executor_ids()[0]
    return TaskContext(stage_id=0, partition_index=0, attempt=0, executor_id=executor_id)


def _dep(ctx, n=2, combiner=None):
    source = ctx.parallelize([], 1)
    return ShuffleDependency(source, HashPartitioner(n), combiner=combiner)


class TestRegistration:
    def test_register_and_missing(self, ctx):
        dep = _dep(ctx)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 3)
        assert sm.is_registered(dep.shuffle_id)
        assert sm.missing_maps(dep.shuffle_id) == [0, 1, 2]

    def test_register_idempotent(self, ctx):
        dep = _dep(ctx)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 2)
        tctx = _ctx_for(ctx)
        sm.write_map_output(dep, 0, iter([(1, "a")]), tctx)
        sm.register_shuffle(dep.shuffle_id, 2)  # must not wipe outputs
        assert sm.missing_maps(dep.shuffle_id) == [1]

    def test_missing_unknown_shuffle_raises(self, ctx):
        with pytest.raises(KeyError):
            ctx.shuffle_manager.missing_maps(99999)

    def test_unregister(self, ctx):
        dep = _dep(ctx)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 1)
        sm.unregister_shuffle(dep.shuffle_id)
        assert not sm.is_registered(dep.shuffle_id)


class TestMapWriteAndFetch:
    def test_records_partitioned_correctly(self, ctx):
        dep = _dep(ctx, n=2)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 1)
        records = [(k, k * 10) for k in range(20)]
        sm.write_map_output(dep, 0, iter(records), _ctx_for(ctx))
        part = dep.partitioner
        for reduce_id in (0, 1):
            got = list(sm.fetch(dep.shuffle_id, reduce_id, _ctx_for(ctx)))
            assert got == [r for r in records if part.partition(r[0]) == reduce_id]

    def test_write_records_bytes(self, ctx):
        dep = _dep(ctx)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 1)
        tctx = _ctx_for(ctx)
        # Distinct payloads: pickle memoizes repeated identical objects, so
        # identical strings would (correctly) serialize tiny.
        sm.write_map_output(
            dep, 0, iter([(k, f"payload-{k:04d}" * 10) for k in range(50)]), tctx
        )
        assert tctx.shuffle_bytes_written > 1000

    def test_fetch_unregistered_raises(self, ctx):
        with pytest.raises(FetchFailedError):
            list(ctx.shuffle_manager.fetch(424242, 0, _ctx_for(ctx)))

    def test_fetch_missing_map_raises_with_map_id(self, ctx):
        dep = _dep(ctx)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 2)
        sm.write_map_output(dep, 0, iter([(1, 1)]), _ctx_for(ctx))
        with pytest.raises(FetchFailedError) as exc:
            list(sm.fetch(dep.shuffle_id, 0, _ctx_for(ctx)))
        assert exc.value.map_id == 1

    def test_fetch_accounts_remote_vs_same_executor(self, ctx):
        dep = _dep(ctx, n=1)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 1)
        writer = ctx.alive_executor_ids()[0]
        sm.write_map_output(dep, 0, iter([(0, "v" * 200)] * 10), _ctx_for(ctx, writer))
        # Same executor: free.
        same = _ctx_for(ctx, writer)
        list(sm.fetch(dep.shuffle_id, 0, same))
        assert same.shuffle_bytes_read_remote == 0
        assert same.shuffle_bytes_read_local == 0
        # Different machine: remote bytes.
        other = next(
            e for e in ctx.alive_executor_ids()
            if not ctx.topology.same_machine(e, writer)
        )
        remote = _ctx_for(ctx, other)
        list(sm.fetch(dep.shuffle_id, 0, remote))
        assert remote.shuffle_bytes_read_remote > 0


class TestMapSideCombiner:
    def test_combiner_reduces_map_output(self, ctx):
        combiner = MapSideCombiner(create=lambda v: v, merge_value=lambda a, b: a + b)
        dep = _dep(ctx, n=1, combiner=combiner)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 1)
        records = [(k % 3, 1) for k in range(300)]
        sm.write_map_output(dep, 0, iter(records), _ctx_for(ctx))
        got = sorted(sm.fetch(dep.shuffle_id, 0, _ctx_for(ctx)))
        assert got == [(0, 100), (1, 100), (2, 100)]  # pre-aggregated


class TestExecutorLoss:
    def test_loss_clears_only_that_executors_outputs(self, ctx):
        dep = _dep(ctx)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 2)
        e1, e2 = ctx.alive_executor_ids()[:2]
        sm.write_map_output(dep, 0, iter([(1, 1)]), _ctx_for(ctx, e1))
        sm.write_map_output(dep, 1, iter([(2, 2)]), _ctx_for(ctx, e2))
        affected = sm.on_executor_lost(e1)
        assert dep.shuffle_id in affected
        assert sm.missing_maps(dep.shuffle_id) == [0]

    def test_loss_of_uninvolved_executor_noop(self, ctx):
        dep = _dep(ctx)
        sm = ctx.shuffle_manager
        sm.register_shuffle(dep.shuffle_id, 1)
        e1 = ctx.alive_executor_ids()[0]
        other = ctx.alive_executor_ids()[1]
        sm.write_map_output(dep, 0, iter([(1, 1)]), _ctx_for(ctx, e1))
        assert sm.on_executor_lost(other) == []
        assert sm.missing_maps(dep.shuffle_id) == []
