"""Join operators: all three baseline implementations agree with a reference
nested-loop join, across join types, sizes, skew, and residuals."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Config
from repro.sql.analysis import resolve_expression
from repro.sql.expressions import Column
from repro.sql.functions import col
from repro.sql.joins import (
    BroadcastHashJoinExec,
    ShuffleHashJoinExec,
    SortMergeJoinExec,
    make_key_func,
)
from repro.sql.logical import Join, Relation
from repro.sql.physical import RowSourceExec
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

LEFT_SCHEMA = Schema.of(("k", LONG), ("lv", STRING))
RIGHT_SCHEMA = Schema.of(("rk", LONG), ("rv", DOUBLE))


def reference_join(left, right, how="inner", residual=None):
    out = []
    for l in left:
        matched = False
        for r in right:
            if l[0] == r[0]:
                joined = l + r
                if residual is None or residual(joined):
                    out.append(joined)
                    matched = True
        if how == "left" and not matched:
            out.append(l + (None, None))  # right side is 2 columns wide
    return out


def build_exec(cls, session, left_rows, right_rows, how="inner", residual=None, **kw):
    left_rel = Relation("l", LEFT_SCHEMA, rows=left_rows)
    right_rel = Relation("r", RIGHT_SCHEMA, rows=right_rows)
    left = RowSourceExec(session, left_rel)
    right = RowSourceExec(session, right_rel)
    lk = [resolve_expression(col("k"), LEFT_SCHEMA)]
    rk = [resolve_expression(col("rk"), RIGHT_SCHEMA)]
    schema = LEFT_SCHEMA.concat(RIGHT_SCHEMA)
    res = resolve_expression(residual, schema) if residual is not None else None
    return cls(session, left, right, lk, rk, how, res, schema, **kw)


JOIN_CLASSES = [BroadcastHashJoinExec, ShuffleHashJoinExec, SortMergeJoinExec]


@pytest.fixture()
def session():
    return Session(config=Config(default_parallelism=3, shuffle_partitions=3))


class TestInnerJoinAgreement:
    @pytest.mark.parametrize("cls", JOIN_CLASSES)
    def test_small_inner(self, session, cls):
        left = [(1, "a"), (2, "b"), (1, "c"), (9, "z")]
        right = [(1, 0.5), (2, 1.5), (1, 2.5), (7, 9.9)]
        got = sorted(build_exec(cls, session, left, right).execute().collect())
        want = sorted(reference_join(left, right))
        assert got == want

    @pytest.mark.parametrize("cls", JOIN_CLASSES)
    def test_empty_sides(self, session, cls):
        assert build_exec(cls, session, [], [(1, 1.0)]).execute().collect() == []
        assert build_exec(cls, session, [(1, "a")], []).execute().collect() == []

    @pytest.mark.parametrize("cls", JOIN_CLASSES)
    def test_skewed_keys(self, session, cls):
        left = [(0, f"l{i}") for i in range(50)] + [(1, "only")]
        right = [(0, 1.0), (0, 2.0), (1, 3.0)]
        got = build_exec(cls, session, left, right).execute().collect()
        assert len(got) == 50 * 2 + 1

    @pytest.mark.parametrize("cls", JOIN_CLASSES)
    def test_residual_condition(self, session, cls):
        left = [(1, "a"), (2, "b")]
        right = [(1, 0.5), (1, 5.0), (2, 0.1)]
        residual = col("rv") > 1.0
        got = sorted(build_exec(cls, session, left, right, residual=residual).execute().collect())
        assert got == [(1, "a", 1, 5.0)]

    @given(
        left=st.lists(
            st.tuples(st.integers(min_value=0, max_value=8), st.text(max_size=3)), max_size=30
        ),
        right=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=30,
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_all_impls_agree_property(self, left, right):
        session = Session(config=Config(default_parallelism=2, shuffle_partitions=2))
        want = sorted(reference_join(left, right))
        for cls in JOIN_CLASSES:
            got = sorted(build_exec(cls, session, left, right).execute().collect())
            assert got == want, cls.__name__


class TestLeftJoin:
    @pytest.mark.parametrize(
        "cls", [BroadcastHashJoinExec, ShuffleHashJoinExec, SortMergeJoinExec]
    )
    def test_left_outer_emits_nulls(self, session, cls):
        left = [(1, "a"), (5, "nomatch")]
        right = [(1, 2.0)]
        got = sorted(
            build_exec(cls, session, left, right, how="left").execute().collect(),
            key=repr,
        )
        assert (1, "a", 1, 2.0) in got
        assert (5, "nomatch", None, None) in got
        assert len(got) == 2


class TestBuildSides:
    def test_broadcast_build_left(self, session):
        left = [(1, "a")]
        right = [(1, 0.5), (2, 1.5)]
        exec_ = build_exec(BroadcastHashJoinExec, session, left, right, build_side="left")
        assert sorted(exec_.execute().collect()) == [(1, "a", 1, 0.5)]

    def test_shuffle_build_left(self, session):
        left = [(1, "a"), (2, "b")]
        right = [(1, 0.5)]
        exec_ = build_exec(ShuffleHashJoinExec, session, left, right, build_side="left")
        assert sorted(exec_.execute().collect()) == [(1, "a", 1, 0.5)]

    def test_invalid_build_side(self, session):
        with pytest.raises(ValueError):
            build_exec(BroadcastHashJoinExec, session, [], [], build_side="middle")


class TestPhaseAccounting:
    def test_broadcast_join_records_build_phase(self, session):
        left = [(i, "x") for i in range(20)]
        right = [(i, float(i)) for i in range(20)]
        session.phase_timer.phases.clear()
        build_exec(BroadcastHashJoinExec, session, left, right).execute().collect()
        assert "build_hash_table" in session.phase_timer.phases
        assert "broadcast" in session.phase_timer.phases

    def test_repeated_broadcast_joins_rebuild_each_time(self, session):
        """The vanilla half of Fig. 1: every execution pays the build again."""
        left = [(i, "x") for i in range(50)]
        right = [(i, float(i)) for i in range(50)]
        session.phase_timer.phases.clear()
        exec_once = build_exec(BroadcastHashJoinExec, session, left, right)
        exec_once.execute().collect()
        t1 = session.phase_timer.phases["build_hash_table"]
        for _ in range(3):
            build_exec(BroadcastHashJoinExec, session, left, right).execute().collect()
        t4 = session.phase_timer.phases["build_hash_table"]
        assert t4 > t1  # accumulated over reruns


class TestKeyFunc:
    def test_single_key(self):
        f = make_key_func([resolve_expression(col("k"), LEFT_SCHEMA)])
        assert f((5, "a")) == 5

    def test_multi_key_tuple(self):
        f = make_key_func(
            [
                resolve_expression(col("k"), LEFT_SCHEMA),
                resolve_expression(col("lv"), LEFT_SCHEMA),
            ]
        )
        assert f((5, "a")) == (5, "a")
