"""Parallel stage execution: threads mode vs sequential, under failures.

The tentpole invariants: both scheduler modes produce identical results,
slot accounting never leaks (late tasks keep their locality), task
retries/blacklisting survive the pool, a FetchFailedError cancels in-flight
siblings and still drives the DAG scheduler's lineage recovery, and an
executor ``kill()`` in the middle of a running stage converges.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster.topology import private_cluster
from repro.config import Config
from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner
from repro.engine.scheduler import TaskFailure
from repro.sql.session import Session
from tests.conftest import EDGE_SCHEMA, make_edges


def make_context(mode: str, **overrides) -> EngineContext:
    cfg = dict(
        default_parallelism=8,
        shuffle_partitions=8,
        scheduler_mode=mode,
        row_batch_size=8192,
    )
    cfg.update(overrides)
    return EngineContext(config=Config(**cfg), topology=private_cluster(num_machines=2))


class TestModeEquivalence:
    def test_shuffle_job_identical_across_modes(self):
        data = [(i % 13, i) for i in range(2000)]
        results = {}
        for mode in ("sequential", "threads"):
            ctx = make_context(mode)
            rdd = ctx.parallelize(data, 8).reduce_by_key(lambda a, b: a + b)
            results[mode] = sorted(rdd.collect())
        assert results["sequential"] == results["threads"]

    def test_indexed_join_identical_across_modes(self):
        edges = make_edges(n=1500, keys=60)
        results = {}
        for mode in ("sequential", "threads"):
            session = Session(
                config=Config(
                    default_parallelism=4,
                    shuffle_partitions=4,
                    scheduler_mode=mode,
                    row_batch_size=8192,
                )
            )
            df = session.create_dataframe(edges, EDGE_SCHEMA, "edges")
            idf = df.create_index("src").cache_index()
            probe = session.create_dataframe(
                [(k,) for k in range(0, 60, 3)],
                EDGE_SCHEMA.select(["src"]),
                "probe",
            )
            joined = probe.join(idf.to_df(), on=("src", "src"))
            results[mode] = sorted(joined.collect_tuples())
        assert results["sequential"] == results["threads"]
        assert results["threads"]  # non-trivial join output

    def test_chained_shuffles_threads(self):
        ctx = make_context("threads")
        rdd = (
            ctx.parallelize([(i % 7, 1) for i in range(700)], 8)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[1], kv[0]))
            .reduce_by_key(lambda a, b: a + b)
        )
        assert dict(rdd.collect()) == {100: sum(range(7))}

    def test_unknown_mode_rejected(self):
        # Config.validate() rejects the mode at construction, before any
        # job could run against a half-built context.
        with pytest.raises(ValueError, match="scheduler_mode"):
            make_context("fibers")


class TestConcurrencyStress:
    def test_flaky_tasks_and_kill_mid_stage(self):
        """Shuffle-heavy job under injected task failures plus an executor
        killed by a running task: results must equal sequential mode and
        lineage recovery must converge — deterministically."""
        data = [(i % 17, i) for i in range(3000)]
        expected = sorted(
            EngineContext(config=Config(default_parallelism=8, shuffle_partitions=8))
            .parallelize(data, 8)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )

        ctx = make_context("threads")
        state = {"fails": 0, "killed": False}
        lock = threading.Lock()

        def flaky(kv):
            with lock:
                if kv[1] % 997 == 0 and state["fails"] < 3:
                    state["fails"] += 1
                    raise OSError("transient task failure")
            return kv

        # Build the shuffle once so some executor owns map outputs.
        src = ctx.parallelize(data, 8).map(flaky)
        shuffled = src.partition_by(HashPartitioner(8))
        first = sorted(shuffled.reduce_by_key(lambda a, b: a + b).collect())
        assert first == expected
        assert state["fails"] == 3  # retries actually exercised

        # Now a reduce-side job whose first-running task kills a producer
        # executor mid-stage: in-flight siblings hit FetchFailedError /
        # dead-executor errors, the stage cancels, and the DAG scheduler
        # recomputes the lost map outputs from lineage.
        producers = {
            out.executor_id
            for slots in ctx.shuffle_manager._outputs.values()
            for out in slots
            if out is not None
        }

        def kill_once(kv):
            with lock:
                if not state["killed"]:
                    state["killed"] = True
                    victim = sorted(producers)[0]
                    if ctx.executors[victim].alive:
                        ctx.kill_executor(victim)
            return kv

        recovered = sorted(
            shuffled.map(kill_once).reduce_by_key(lambda a, b: a + b).collect()
        )
        assert recovered == expected
        assert state["killed"]

    def test_fetch_failure_recovery_threads(self):
        ctx = make_context("threads")
        shuffled = ctx.parallelize([(i % 5, i) for i in range(500)], 8).partition_by(
            HashPartitioner(8)
        )
        assert len(shuffled.collect()) == 500
        victims = list(ctx.alive_executor_ids())[:-1]
        for v in victims:
            ctx.kill_executor(v)
        assert sorted(shuffled.collect()) == sorted((i % 5, i) for i in range(500))

    def test_permanent_failure_cancels_and_raises(self):
        ctx = make_context("threads", max_task_retries=1)

        def bad(x):
            raise ValueError("always broken")

        with pytest.raises(TaskFailure):
            ctx.parallelize(range(64), 8).map(bad).collect()
        # The pool drained: every acquired slot was released.
        assert ctx.task_scheduler.busy == {}

    def test_flaky_task_retried_threads(self):
        ctx = make_context("threads")
        state = {"n": 0}
        lock = threading.Lock()

        def flaky(x):
            with lock:
                if x == 7 and state["n"] < 2:
                    state["n"] += 1
                    raise OSError("transient")
            return x

        assert sorted(ctx.parallelize(range(100), 8).map(flaky).collect()) == list(range(100))
        assert state["n"] == 2


class TestSlotAccounting:
    def test_busy_slot_leak_fixed_sequential(self):
        """Slots are released on task completion, so *every* task of a large
        stage over a cached RDD keeps PROCESS_LOCAL placement. Before the
        fix, busy[] only grew and late partitions degraded to ANY — the
        stale-copy hazard the paper's version numbers exist to catch."""
        topo = private_cluster(
            num_machines=1, executors_per_machine=1, cores_per_executor=2
        )
        ctx = EngineContext(
            config=Config(
                default_parallelism=16,
                shuffle_partitions=4,
                partitions_per_core=2,  # capacity 4 < 16 partitions
            ),
            topology=topo,
        )
        rdd = ctx.parallelize(range(160), 16).persist()
        rdd.collect()  # materialize blocks on the only executor
        rdd.collect()  # re-run: every task should see a free local slot
        placements = ctx.task_scheduler.last_placements
        assert len(placements) == 16
        assert all(lvl == "PROCESS_LOCAL" for _e, lvl in placements)

    def test_placements_coherent_under_pool(self):
        ctx = make_context("threads")
        rdd = ctx.parallelize(range(400), 16).persist()
        rdd.collect()
        rdd.collect()
        scheduler = ctx.task_scheduler
        placements = scheduler.last_placements
        # One placement per launched attempt; no failures here, so exactly
        # one per partition, every executor real and every level legal.
        assert len(placements) == 16
        valid = set(ctx.executors)
        assert all(e in valid for e, _lvl in placements)
        assert all(lvl in ("PROCESS_LOCAL", "NODE_LOCAL", "ANY") for _e, lvl in placements)
        # All slots drained after the stage.
        assert scheduler.busy == {}

    def test_pool_width_derivation(self):
        ctx = make_context("threads")
        derived = ctx.task_scheduler.max_concurrent_tasks()
        assert 1 <= derived <= 32
        ctx_explicit = make_context("threads", max_concurrent_tasks=3)
        assert ctx_explicit.task_scheduler.max_concurrent_tasks() == 3

    def test_slots_released_after_failure_sequential(self):
        ctx = make_context("sequential", max_task_retries=1)

        def bad(x):
            raise ValueError("broken")

        with pytest.raises(TaskFailure):
            ctx.parallelize(range(8), 4).map(bad).collect()
        assert ctx.task_scheduler.busy == {}


class TestShuffleRecovery:
    def test_wholly_unregistered_shuffle_recovers(self):
        """A shuffle dropped from the registry entirely (FetchFailedError
        with map_id == -1) is re-registered and recomputed on retry instead
        of escaping run_job as a bare KeyError."""
        for mode in ("sequential", "threads"):
            ctx = make_context(mode)
            shuffled = ctx.parallelize([(i % 3, i) for i in range(300)], 8).partition_by(
                HashPartitioner(8)
            )
            assert len(shuffled.collect()) == 300
            dep = shuffled.dependencies[0]
            ctx.shuffle_manager.unregister_shuffle(dep.shuffle_id)
            assert sorted(shuffled.collect()) == sorted((i % 3, i) for i in range(300))

    def test_map_output_dropped_when_shuffle_unregistered_mid_write(self):
        """write_map_output for a concurrently unregistered shuffle drops
        the bucket instead of raising KeyError inside a task."""
        ctx = make_context("sequential")
        shuffled = ctx.parallelize([(i % 2, i) for i in range(100)], 4).partition_by(
            HashPartitioner(4)
        )
        dep = shuffled.dependencies[0]
        shuffled.collect()
        ctx.shuffle_manager.unregister_shuffle(dep.shuffle_id)
        # Next run re-registers and recomputes; results intact.
        assert len(shuffled.collect()) == 100
