"""Shared-memory row batches + kernel pool (DESIGN.md §13).

Covers the processes-mode substrate end to end:

* SharedRowBatch interface parity with RowBatch and the owner-side
  segment lifecycle (finalizer unlink, atexit-style sweep, no leaks);
* handle resolution rules (spilled/columnar/mixed partitions refuse);
* SegmentCache attach/detach and concurrent readers;
* the ProcessPool kernels against driver-side ground truth, including
  result shipping through shared segments and MVCC visibility across
  the process boundary;
* worker crashes (chaos SIGKILL) surfacing as WorkerCrashed + respawn;
* shuffle ShmBucket staging and the scheduler's small-job inline path.
"""

from __future__ import annotations

import glob
import threading

import pytest

from repro.config import Config
from repro.engine.proc_pool import WorkerCrashed, get_pool, shutdown_pool
from repro.engine.shuffle import ShmBucket
from repro.indexed.partition import IndexedPartition
from repro.indexed.row_batch import RowBatch
from repro.indexed.shared_batches import (
    SEGMENT_PREFIX,
    BatchHandle,
    SegmentCache,
    SharedRowBatch,
    attach_segment,
    chain_handles,
    owned_segment_count,
    scan_handles,
    sweep_owned_segments,
)
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, Schema

EDGE = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))


def shm_entries() -> set[str]:
    """Names of this run's segments currently visible in /dev/shm."""
    return {p.rsplit("/", 1)[1] for p in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")}


def make_part(rows, batch_size=2048, factory=SharedRowBatch) -> IndexedPartition:
    part = IndexedPartition(
        EDGE, "src", batch_size=batch_size, max_row_size=256, version=0,
        batch_factory=factory,
    )
    part.insert_rows(rows)
    return part


@pytest.fixture(scope="module")
def pool():
    p = get_pool(2)
    yield p
    shutdown_pool()


# ---------------------------------------------------------------------------
# SharedRowBatch: interface parity + lifecycle
# ---------------------------------------------------------------------------


class TestSharedRowBatch:
    def test_interface_parity_with_row_batch(self):
        shared, private = SharedRowBatch(256), RowBatch(256)
        for batch in (shared, private):
            assert batch.append(b"hello") == 0
            assert batch.append(b"world") == 5
            assert batch.used == 10
            assert bytes(batch.buf[:10]) == b"helloworld"
            assert batch.nbytes == 256
            assert batch.reserve(999) is None  # over capacity
        assert shared.resident is True
        shared.release()

    def test_segment_visible_in_dev_shm_until_released(self):
        batch = SharedRowBatch(1024)
        name = batch.name
        assert name in shm_entries()
        batch.release()
        assert name not in shm_entries()
        batch.release()  # idempotent

    def test_finalizer_unlinks_on_gc(self):
        before = owned_segment_count()
        batch = SharedRowBatch(512)
        name = batch.name
        assert owned_segment_count() == before + 1
        del batch
        assert owned_segment_count() == before
        assert name not in shm_entries()

    def test_sweep_releases_stragglers(self):
        batches = [SharedRowBatch(256) for _ in range(3)]
        names = [b.name for b in batches]
        # Detach the finalizers to simulate an interrupted run, then sweep.
        for b in batches:
            b._finalizer.detach()
            b._finalizer = None
        del batches
        assert sweep_owned_segments() >= 3
        assert not (set(names) & shm_entries())

    def test_from_batch_copies_private_buffer(self):
        private = RowBatch(128)
        private.append(b"abcdef")
        shared = SharedRowBatch.from_batch(private)
        assert shared.used == 6
        assert bytes(shared.buf[:6]) == b"abcdef"
        shared.release()

    def test_sizeof_charges_full_capacity(self):
        import sys

        batch = SharedRowBatch(4096)
        assert sys.getsizeof(batch) >= 4096  # memory-manager metering
        batch.release()


# ---------------------------------------------------------------------------
# Handle resolution
# ---------------------------------------------------------------------------


class TestHandleResolution:
    def test_scan_handles_cover_watermarks(self):
        rows = [(i % 7, i, float(i)) for i in range(500)]
        part = make_part(rows)
        handles = scan_handles(part)
        assert handles and all(isinstance(h, BatchHandle) for h in handles)
        assert [h.visible for h in handles] == [
            w for w in part.visible_watermarks() if w
        ]

    def test_private_batches_resolve_to_none(self):
        part = make_part([(1, 2, 3.0)], factory=RowBatch)
        assert scan_handles(part) is None
        assert chain_handles(part) is None

    def test_mixed_batches_resolve_to_none(self):
        part = make_part([(i % 3, i, 0.0) for i in range(400)])
        assert chain_handles(part) is not None
        part.batches[0] = RowBatch(2048)  # e.g. one batch spilled + restored
        assert chain_handles(part) is None

    def test_snapshot_keeps_factory_and_visibility(self):
        parent = make_part([(i % 5, i, 1.0) for i in range(200)])
        child = parent.snapshot(1)
        child.insert_rows([(99, 1, 2.0), (99, 2, 2.5)])
        assert child.batch_factory is SharedRowBatch
        # Parent handles expose only the parent's watermarks: the child's
        # appends into the shared tail batch stay invisible.
        parent_visible = sum(h.visible for h in scan_handles(parent))
        child_visible = sum(h.visible for h in scan_handles(child))
        assert child_visible > parent_visible


# ---------------------------------------------------------------------------
# SegmentCache
# ---------------------------------------------------------------------------


class TestSegmentCache:
    def test_attach_detach_roundtrip(self):
        batch = SharedRowBatch(256)
        batch.append(b"payload!")
        cache = SegmentCache()
        assert bytes(cache.view(batch.name)[:8]) == b"payload!"
        assert cache.attaches == 1
        cache.view(batch.name)  # cached: no new attach
        assert cache.attaches == 1
        assert len(cache) == 1
        assert cache.detach(batch.name) is True
        assert cache.detach(batch.name) is False
        cache.close_all()
        batch.release()

    def test_lru_bound(self):
        batches = [SharedRowBatch(64) for _ in range(5)]
        cache = SegmentCache(max_entries=3)
        for b in batches:
            cache.view(b.name)
        assert len(cache) <= 3
        cache.close_all()
        for b in batches:
            b.release()

    def test_concurrent_readers_one_segment(self):
        batch = SharedRowBatch(4096)
        batch.append(b"x" * 1000)
        cache = SegmentCache()
        errors: list[Exception] = []

        def read():
            try:
                for _ in range(200):
                    view = cache.view(batch.name)
                    assert bytes(view[:4]) == b"xxxx"
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=read) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        cache.close_all()
        batch.release()

    def test_attach_segment_does_not_adopt_ownership(self):
        batch = SharedRowBatch(128)
        batch.append(b"still-mine")
        shm = attach_segment(batch.name)
        assert bytes(shm.buf[:10]) == b"still-mine"
        shm.close()
        assert batch.name in shm_entries()  # owner's segment untouched
        batch.release()


# ---------------------------------------------------------------------------
# The kernel pool
# ---------------------------------------------------------------------------


class TestProcessPool:
    def test_scan_matches_driver_decode(self, pool):
        rows = [(i % 13, i, float(i) / 3) for i in range(2000)]
        part = make_part(rows)
        got, info = pool.scan(EDGE, part.codec.max_row_size, scan_handles(part))
        assert sorted(got) == sorted(part.scan_rows())
        assert info["bytes_referenced"] > 0
        assert info["attaches"] >= 1

    def test_chains_match_driver_lookup(self, pool):
        from repro.indexed.pointers import NULL_POINTER

        rows = [(i % 9, i, 0.5) for i in range(1200)]
        part = make_part(rows)
        keys = list(range(9))
        pointers = [part.ctrie.lookup(part.index_key(k), NULL_POINTER) for k in keys]
        assert NULL_POINTER not in pointers
        chains, _ = pool.chains(
            EDGE, part.codec.max_row_size, chain_handles(part), pointers
        )
        for key, chain in zip(keys, chains):
            assert sorted(chain) == sorted(part.lookup(key))

    def test_large_result_ships_via_shared_segment(self, pool):
        rows = [(i, i, float(i) / 7) for i in range(25_000)]  # >> 256 KiB pickled
        part = make_part(rows, batch_size=1 << 18)
        got, info = pool.scan(EDGE, part.codec.max_row_size, scan_handles(part))
        assert len(got) == 25_000
        assert info["via_shm"] is True
        assert info["result_bytes"] >= pool.result_shm_bytes
        # The worker-created result segment was unlinked by the driver.
        assert not glob.glob("/dev/shm/repro-res-*")

    def test_mvcc_visibility_across_processes(self, pool):
        parent = make_part([(i % 4, i, 1.0) for i in range(300)])
        parent_handles = scan_handles(parent)
        child = parent.snapshot(1)
        child.insert_rows([(7, 10_000 + i, 9.9) for i in range(50)])
        # The pre-append handles must hide the child's rows from the worker.
        got, _ = pool.scan(EDGE, parent.codec.max_row_size, parent_handles)
        assert len(got) == 300
        assert not [r for r in got if r[2] == 9.9]
        child_got, _ = pool.scan(EDGE, child.codec.max_row_size, scan_handles(child))
        assert len(child_got) == 350

    def test_chaos_kill_raises_and_respawns(self, pool):
        part = make_part([(i % 3, i, 0.0) for i in range(200)])
        handles = scan_handles(part)
        with pytest.raises(WorkerCrashed):
            pool.scan(EDGE, part.codec.max_row_size, handles, chaos_kill=True)
        # The slot was respawned: the pool keeps serving.
        got, _ = pool.scan(EDGE, part.codec.max_row_size, handles)
        assert len(got) == 200


# ---------------------------------------------------------------------------
# Shuffle staging
# ---------------------------------------------------------------------------


class TestShmBucket:
    def test_roundtrip_and_lifecycle(self):
        rows = [(i, f"v{i}") for i in range(100)]
        bucket = ShmBucket(rows)
        assert len(bucket) == 100
        assert bucket.rows() == rows
        name = bucket.name
        assert glob.glob(f"/dev/shm/{name}")
        del bucket
        assert not glob.glob(f"/dev/shm/{name}")


# ---------------------------------------------------------------------------
# Engine integration: dispatch accounting + no leaked segments
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_small_jobs_inline_large_jobs_pool(self):
        session = Session(config=Config(
            scheduler_mode="threads", default_parallelism=4, shuffle_partitions=4,
            small_stage_inline_threshold=2, small_stage_inline_rows=64,
        ))
        ctx = session.context
        # 2 partitions <= threshold: inline on the driver thread.
        assert ctx.parallelize(range(10), 2).map(lambda x: x + 1).collect()
        by_path = ctx.registry.counter_by_label("tasks_dispatched_total", "path")
        assert by_path.get("inline", 0) == 2 and not by_path.get("pooled")
        # 4 partitions with no row estimate: the thread pool.
        assert ctx.parallelize(range(5000), 4).map(lambda x: x + 1).collect()
        by_path = ctx.registry.counter_by_label("tasks_dispatched_total", "path")
        assert by_path.get("pooled", 0) == 4

    def test_records_hint_inlines_broadcast_probe(self):
        session = Session(config=Config(
            scheduler_mode="threads", default_parallelism=4, shuffle_partitions=4,
            small_stage_inline_threshold=0, small_stage_inline_rows=64,
        ))
        ctx = session.context
        rdd = ctx.parallelize(range(4000), 4).map(lambda x: x)
        assert rdd.estimated_records() == 4000
        assert rdd.with_estimated_records(12).estimated_records() == 12
        rdd.collect()
        by_path = ctx.registry.counter_by_label("tasks_dispatched_total", "path")
        assert by_path.get("inline", 0) == 4  # hinted below the row threshold

    def test_processes_mode_no_segment_leak(self):
        sweep_owned_segments()
        before = shm_entries()
        session = Session(config=Config(
            scheduler_mode="processes", default_parallelism=4, shuffle_partitions=4,
            proc_offload_min_bytes=0, proc_offload_min_keys=1,
            small_stage_inline_threshold=0, small_stage_inline_rows=0,
        ))
        rows = [(i % 40, i, float(i)) for i in range(4000)]
        idf = session.create_dataframe(rows, EDGE, "edges").create_index("src")
        got = sorted(idf.to_df().collect_tuples())
        assert got == sorted(rows)
        reg = session.context.registry
        assert reg.counter_total("proc_kernel_dispatch_total") > 0
        assert reg.counter_total("proc_bytes_referenced_total") > 0
        del idf, session
        import gc

        gc.collect()
        assert owned_segment_count() == 0
        assert shm_entries() <= before
