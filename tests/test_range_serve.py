"""Serve-tier range path: RangeTemplate recognition, snapshot range
lookups, and shard fan-out with failover.

A recognized single-range query must serve from the pinned snapshot's
ordered indexes (``path == "range"``) with exact oracle agreement —
including inclusive/exclusive bounds and parameter binding — and the
sharded router must fan the range out to live replicas, surviving a
killed shard with a complete answer (replicated) or an explicitly
``degraded`` partial one (unreplicated), never a silent wrong answer.
"""

from __future__ import annotations

import random

import pytest

from repro.config import Config
from repro.serve.router import RouterConfig, ShardRouter
from repro.serve.server import QueryServer, ServeConfig
from repro.sql.session import Session
from repro.sql.types import LONG, STRING, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("tag", STRING))
KEYS = 200


def make_rows(n=2000, seed=7):
    rng = random.Random(seed)
    return [(rng.randrange(KEYS), i, f"user{i % 50:04d}") for i in range(n)]


def normalize(rows):
    return sorted(tuple(r) for r in rows)


@pytest.fixture()
def session():
    return Session(config=Config(default_parallelism=4, shuffle_partitions=4))


@pytest.fixture()
def rows():
    return make_rows()


@pytest.fixture()
def served(session, rows):
    idf = session.create_dataframe(rows, EDGE_SCHEMA).create_index("src").cache_index()
    server = QueryServer(session, ServeConfig())
    server.publish("edges_idx", idf)
    yield server, idf
    server.shutdown()


class TestServerRangePath:
    def test_between_served_on_range_path(self, served, rows):
        server, _ = served
        res = server.query("SELECT src, dst FROM edges_idx WHERE src BETWEEN 50 AND 59")
        assert res.path == "range"
        assert normalize(res.rows) == normalize(
            (s, d) for s, d, _ in rows if 50 <= s <= 59
        )

    def test_parameterized_half_open_bounds(self, served, rows):
        server, _ = served
        lt = server.query(
            "SELECT src FROM edges_idx WHERE src >= ? AND src < ?", params=[100, 110]
        )
        le = server.query(
            "SELECT src FROM edges_idx WHERE src >= ? AND src <= ?", params=[100, 110]
        )
        assert lt.path == "range" and le.path == "range"
        assert normalize(lt.rows) == normalize((s,) for s, _, _ in rows if 100 <= s < 110)
        assert normalize(le.rows) == normalize((s,) for s, _, _ in rows if 100 <= s <= 110)
        # The boundary key exists, so conflating < with <= must show up.
        assert len(le.rows) > len(lt.rows)

    def test_prefix_like_on_string_key(self, session):
        rows = [(f"user{i % 30:03d}", i) for i in range(500)]
        idf = (
            session.create_dataframe(rows, Schema.of(("name", STRING), ("uid", LONG)))
            .create_index("name")
            .cache_index()
        )
        server = QueryServer(session, ServeConfig())
        server.publish("users_idx", idf)
        res = server.query("SELECT name, uid FROM users_idx WHERE name LIKE 'user01%'")
        assert res.path == "range"
        assert normalize(res.rows) == normalize(
            r for r in rows if r[0].startswith("user01")
        )
        server.shutdown()

    def test_empty_and_reversed_ranges(self, served):
        server, _ = served
        rev = server.query("SELECT src FROM edges_idx WHERE src BETWEEN 90 AND 10")
        assert rev.path == "range" and rev.rows == []
        empty = server.query(
            "SELECT src FROM edges_idx WHERE src > ? AND src < ?", params=[50, 51]
        )
        assert empty.path == "range" and empty.rows == []

    def test_equality_still_owns_the_point_path(self, served):
        server, _ = served
        res = server.query("SELECT dst FROM edges_idx WHERE src = 42")
        assert res.path == "fastpath"

    def test_range_recognition_is_memoized(self, served):
        server, _ = served
        for _ in range(3):
            server.query("SELECT src FROM edges_idx WHERE src BETWEEN 10 AND 20")
        reg = server.registry
        assert reg.counter_total("ordered_index_range_scans_total") == 0  # no jobs ran
        # Same text thrice: the plan cache should have resolved the route
        # without re-parsing each time (hits >= 2).
        assert reg.counter_value("plan_cache_requests_total", outcome="hit") >= 2


class TestRouterRangeFanOut:
    def make_router(self, session, idf, num_shards=3, **cfg):
        router = ShardRouter(session, num_shards, RouterConfig(**cfg))
        router.publish("edges_idx", idf)
        return router

    def test_fan_out_matches_oracle(self, session, rows):
        idf = session.create_dataframe(rows, EDGE_SCHEMA).create_index("src").cache_index()
        router = self.make_router(session, idf)
        res = router.query("SELECT src, dst FROM edges_idx WHERE src BETWEEN 50 AND 79")
        assert res.path == "range" and not res.degraded
        assert normalize(res.rows) == normalize(
            (s, d) for s, d, _ in rows if 50 <= s <= 79
        )
        router.shutdown()

    def test_kill_one_shard_replicated_answer_stays_complete(self, session, rows):
        idf = session.create_dataframe(rows, EDGE_SCHEMA).create_index("src").cache_index()
        router = self.make_router(session, idf, replication_factor=2)
        want = normalize((s, d) for s, d, _ in rows if 50 <= s <= 79)
        router.kill_shard(0)
        res = router.query("SELECT src, dst FROM edges_idx WHERE src BETWEEN 50 AND 79")
        assert res.path == "range"
        assert not res.degraded
        assert normalize(res.rows) == want
        router.shutdown()

    def test_unreplicated_loss_degrades_explicitly(self, session, rows):
        idf = session.create_dataframe(rows, EDGE_SCHEMA).create_index("src").cache_index()
        router = self.make_router(
            session, idf, num_shards=2, replication_factor=1, auto_repair=False
        )
        router.kill_shard(1)
        res = router.query("SELECT src, dst FROM edges_idx WHERE src BETWEEN 0 AND 199")
        assert res.path == "range"
        assert res.degraded and res.missing_partitions
        want = normalize((s, d) for s, d, _ in rows)
        got = normalize(res.rows)
        assert len(got) < len(want)  # partial, and flagged as such
        assert set(got) <= set(want)  # but never wrong
        router.shutdown()

    def test_range_with_residual_predicate(self, session, rows):
        idf = session.create_dataframe(rows, EDGE_SCHEMA).create_index("src").cache_index()
        router = self.make_router(session, idf)
        res = router.query(
            "SELECT src, dst FROM edges_idx WHERE src BETWEEN 50 AND 79 AND dst < 500"
        )
        assert res.path == "range"
        assert normalize(res.rows) == normalize(
            (s, d) for s, d, _ in rows if 50 <= s <= 79 and d < 500
        )
        router.shutdown()
