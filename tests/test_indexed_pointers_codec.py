"""Packed pointers and the binary row codec: roundtrips and limits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexed.pointers import (
    MAX_BATCH,
    MAX_OFFSET,
    MAX_SIZE,
    NULL_POINTER,
    is_null,
    pack,
    unpack,
)
from repro.indexed.row_batch import RowBatch
from repro.indexed.row_codec import ROW_HEADER_SIZE, RowCodec
from repro.sql.types import BOOLEAN, DOUBLE, INTEGER, LONG, STRING, Schema


class TestPointers:
    @given(
        st.integers(min_value=0, max_value=MAX_BATCH),
        st.integers(min_value=0, max_value=MAX_OFFSET),
        st.integers(min_value=0, max_value=MAX_SIZE),
    )
    def test_roundtrip(self, batch, offset, size):
        assert unpack(pack(batch, offset, size)) == (batch, offset, size)

    def test_fits_64_bits(self):
        assert pack(MAX_BATCH, MAX_OFFSET, MAX_SIZE) < 2**64

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack(MAX_BATCH + 1, 0, 0)
        with pytest.raises(ValueError):
            pack(0, MAX_OFFSET + 1, 0)
        with pytest.raises(ValueError):
            pack(0, 0, MAX_SIZE + 1)
        with pytest.raises(ValueError):
            pack(-1, 0, 0)

    def test_null_pointer(self):
        assert is_null(NULL_POINTER)
        assert not is_null(pack(0, 0, 0))
        with pytest.raises(ValueError):
            unpack(NULL_POINTER)

    def test_paper_limits_supported(self):
        """Paper Section III-C: 4 MB batches, rows up to 1 KB."""
        assert MAX_OFFSET >= 4 * 1024 * 1024 - 1
        assert MAX_SIZE >= 1024


SCHEMA = Schema.of(
    ("i", INTEGER), ("l", LONG), ("d", DOUBLE), ("s", STRING), ("b", BOOLEAN)
)

row_strategy = st.tuples(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, width=64),
    st.text(max_size=50),
    st.booleans(),
)


class TestRowCodec:
    def test_simple_roundtrip(self):
        codec = RowCodec(SCHEMA)
        encoded = codec.encode((1, 2, 3.5, "hi", True), prev_ptr=NULL_POINTER)
        row, prev, size = codec.decode(encoded, 0)
        assert row == (1, 2, 3.5, "hi", True)
        assert prev == NULL_POINTER
        assert size == len(encoded)

    def test_prev_pointer_stored(self):
        codec = RowCodec(SCHEMA)
        ptr = pack(3, 128, 44)
        encoded = codec.encode((0, 0, 0.0, "", False), prev_ptr=ptr)
        _, prev, _ = codec.decode(encoded, 0)
        assert prev == ptr
        assert codec.read_prev_ptr(encoded, 0) == ptr

    def test_nulls(self):
        codec = RowCodec(SCHEMA)
        encoded = codec.encode((None, 5, None, None, True), prev_ptr=NULL_POINTER)
        row, _, _ = codec.decode(encoded, 0)
        assert row == (None, 5, None, None, True)

    def test_all_null_row(self):
        codec = RowCodec(SCHEMA)
        encoded = codec.encode((None,) * 5, prev_ptr=NULL_POINTER)
        assert codec.decode(encoded, 0)[0] == (None,) * 5

    def test_decode_at_offset(self):
        codec = RowCodec(SCHEMA)
        a = codec.encode((1, 1, 1.0, "a", False), NULL_POINTER)
        b = codec.encode((2, 2, 2.0, "bb", True), NULL_POINTER)
        buf = a + b
        row_b, _, _ = codec.decode(buf, len(a))
        assert row_b == (2, 2, 2.0, "bb", True)
        assert codec.record_size(buf, 0) == len(a)
        assert codec.record_size(buf, len(a)) == len(b)

    def test_wrong_arity_rejected(self):
        codec = RowCodec(SCHEMA)
        with pytest.raises(ValueError):
            codec.encode((1, 2), NULL_POINTER)

    def test_oversized_row_rejected(self):
        codec = RowCodec(SCHEMA, max_row_size=64)
        with pytest.raises(ValueError):
            codec.encode((1, 1, 1.0, "x" * 100, True), NULL_POINTER)

    def test_unicode_strings(self):
        codec = RowCodec(SCHEMA)
        encoded = codec.encode((0, 0, 0.0, "héllo wörld ☃", False), NULL_POINTER)
        assert codec.decode(encoded, 0)[0][3] == "héllo wörld ☃"

    @given(row_strategy)
    @settings(max_examples=100)
    def test_roundtrip_property(self, row):
        codec = RowCodec(SCHEMA)
        encoded = codec.encode(row, NULL_POINTER)
        decoded, _, size = codec.decode(encoded, 0)
        assert decoded == row
        assert size == len(encoded)
        assert size >= ROW_HEADER_SIZE


class TestRowBatch:
    def test_append_and_read(self):
        batch = RowBatch(256)
        off = batch.append(b"hello")
        assert off == 0
        assert bytes(batch.buf[off : off + 5]) == b"hello"
        assert batch.used == 5

    def test_sequential_offsets(self):
        batch = RowBatch(256)
        offs = [batch.append(b"x" * 10) for _ in range(5)]
        assert offs == [0, 10, 20, 30, 40]

    def test_full_batch_returns_none(self):
        batch = RowBatch(16)
        assert batch.append(b"x" * 10) == 0
        assert batch.append(b"y" * 10) is None  # would overflow
        assert batch.append(b"z" * 6) == 10  # still fits

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RowBatch(0)

    def test_concurrent_reserves_disjoint(self):
        import threading

        batch = RowBatch(100_000)
        offsets: list[int] = []
        lock = threading.Lock()

        def writer():
            local = []
            for _ in range(100):
                off = batch.reserve(10)
                assert off is not None
                local.append(off)
            with lock:
                offsets.extend(local)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(offsets) == 800
        assert len(set(offsets)) == 800  # no overlap
        assert batch.used == 8000
