"""Differential oracle suite under seeded corruption chaos.

Satellite (c) of the integrity PR: 50 seeded random queries — point
lookups, SQL equality and range predicates, full scans, and group-by
aggregates — run against a session with ``chaos_corrupt_*`` probabilities
turned on, each checked against a **pure-Python oracle** computed from the
raw row list (no engine code shared). The index is periodically spilled
so every trust boundary keeps getting re-armed: spill fault-in in every
mode, kernel-worker segment attach and staged shuffle fetch additionally
in ``processes`` mode.

The invariants are the tentpole's acceptance criteria: zero wrong
answers, zero unhandled crashes, and at the end of each run
``corruption_detected_total == corruption_repaired_total`` with at least
one corruption actually injected (the chaos seed is fixed, so "the chaos
fired" is deterministic, not flaky).

A second scenario covers the sharded serve tier: one replica of a pinned
snapshot is damaged, the scrubber repairs it, and 50 seeded routed
queries must all match the oracle without degraded results.
"""

from __future__ import annotations

import random

import pytest

from repro.config import Config
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))

MODES = ("sequential", "threads", "processes")
SEEDS = list(range(50))
KEYS = 40
SPILL_EVERY = 7  # re-spill the index every few queries to re-arm the boundary


def normalize(rows):
    return sorted(tuple(r) for r in rows)


def make_edges():
    rng = random.Random(4096)
    return [
        (rng.randrange(KEYS), rng.randrange(KEYS), round(rng.random(), 4))
        for _ in range(3000)
    ]


def chaos_session(mode: str, spill_dir: str) -> Session:
    cfg = dict(
        default_parallelism=3,
        shuffle_partitions=3,
        scheduler_mode=mode,
        row_batch_size=4096,  # multiple sealed batches per partition, so
        spill_dir=spill_dir,  # spill_index() actually moves bytes to disk
        chaos_seed=29,
        chaos_corrupt_spill_prob=0.6,
        task_retry_backoff=0.0,
    )
    if mode == "processes":
        cfg.update(
            # Force the kernel-offload and shm shuffle-staging paths even
            # for this small dataset, so their boundaries see traffic.
            proc_offload_min_bytes=0,
            proc_offload_min_keys=1,
            small_stage_inline_threshold=0,
            small_stage_inline_rows=0,
            shuffle_shm_bytes=1,
            chaos_corrupt_shm_prob=0.3,
            chaos_corrupt_fetch_prob=0.3,
        )
    return Session(config=Config(**cfg))


class CorruptionQueryGenerator:
    """One seeded random query: engine execution + pure-Python oracle."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def build(self, session, edges, idf):
        rng = self.rng
        kind = rng.randrange(5)
        if kind == 0:  # point lookup through the cTrie
            k = rng.randrange(KEYS)
            oracle = [r for r in edges if r[0] == k]
            return idf.lookup_tuples(k), oracle
        if kind == 1:  # SQL equality predicate (indexed scan / offload path)
            k = rng.randrange(KEYS)
            sql = f"SELECT src, dst, w FROM edges_idx WHERE src = {k}"
            oracle = [r for r in edges if r[0] == k]
            return session.sql(sql).collect_tuples(), oracle
        if kind == 2:  # SQL range predicate; reversed bounds arise naturally
            lo, hi = rng.randrange(KEYS), rng.randrange(KEYS)
            sql = f"SELECT src, dst FROM edges_idx WHERE src BETWEEN {lo} AND {hi}"
            oracle = [(s, d) for s, d, _ in edges if lo <= s <= hi]
            return session.sql(sql).collect_tuples(), oracle
        if kind == 3:  # full scan
            return idf.to_df().collect_tuples(), list(edges)
        # kind == 4: group-by aggregate (drives a shuffle)
        sql = "SELECT src, count(*) AS n FROM edges_idx GROUP BY src"
        counts: dict[int, int] = {}
        for s, _d, _w in edges:
            counts[s] = counts.get(s, 0) + 1
        return session.sql(sql).collect_tuples(), list(counts.items())


@pytest.fixture(scope="module")
def edges():
    return make_edges()


@pytest.mark.parametrize("mode", MODES)
def test_50_seed_corruption_differential(edges, mode, tmp_path):
    """Zero wrong answers and detected == repaired over 50 seeds per mode."""
    session = chaos_session(mode, str(tmp_path))
    idf = (
        session.create_dataframe(edges, EDGE_SCHEMA, "edges")
        .create_index("src")
        .cache_index()
    )
    idf.create_or_replace_temp_view("edges_idx")

    mismatches = []
    for i, seed in enumerate(SEEDS):
        if i % SPILL_EVERY == 0:
            # Re-arm the spill boundary: sealed batches go to disk (the
            # chaos hook may damage the files) and fault back in on the
            # next query, where verification must catch any damage.
            idf.spill_index()
        got, want = CorruptionQueryGenerator(seed).build(session, edges, idf)
        if normalize(got) != normalize(want):
            mismatches.append(seed)
    assert mismatches == [], (
        f"corruption chaos changed answers for seeds {mismatches} in {mode} mode"
    )

    reg = session.context.registry
    detected = reg.counter_total("corruption_detected_total")
    repaired = reg.counter_total("corruption_repaired_total")
    assert detected > 0, f"chaos never fired in {mode} mode (seed drift?)"
    assert detected == repaired, (
        f"{detected} corruptions detected but {repaired} repaired in {mode} mode"
    )
    assert session.context.faults.corruptions  # chaos ledger non-empty


def test_sharded_serve_corrupted_replica_matches_oracle(edges):
    """One replica of a pinned snapshot is damaged; after a scrub cycle all
    50 seeded routed point queries match the oracle, undegraded."""
    from repro.integrity import corrupt_buffer
    from repro.serve.router import RouterConfig, ShardRouter
    from repro.serve.scrub import SnapshotScrubber

    session = Session(
        config=Config(
            default_parallelism=4,
            shuffle_partitions=4,
            row_batch_size=4096,
            task_retry_backoff=0.0,
        )
    )
    idf = (
        session.create_dataframe(edges, EDGE_SCHEMA, "edges")
        .create_index("src")
        .cache_index()
    )
    with ShardRouter(session, 3, RouterConfig(replication_factor=2)) as router:
        router.publish("v", idf)
        state = router.pinned("v")
        owner = state.table.replicas(0)[0]
        part = router.shards[owner].snapshot("v").parts[0]
        for batch, wm in zip(part.batches, part.visible_watermarks()):
            if wm:
                corrupt_buffer(batch.buf, wm, "bit_flip")
                break
        stats = SnapshotScrubber(router).scrub_once()
        assert stats["found"] == 1 and stats["repaired"] == 1

        rng = random.Random(17)
        mismatches = []
        for seed in SEEDS:
            k = rng.randrange(KEYS)
            res = router.query(f"SELECT src, dst, w FROM v WHERE src = {k}")
            assert not res.degraded, f"seed {seed}: degraded result after repair"
            want = [r for r in edges if r[0] == k]
            if normalize(res.rows) != normalize(want):
                mismatches.append(seed)
        assert mismatches == [], f"post-repair routed queries diverged: {mismatches}"

    reg = session.context.registry
    assert reg.counter_total("corruption_detected_total") == reg.counter_total(
        "corruption_repaired_total"
    )
