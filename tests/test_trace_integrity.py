"""Span-tracer integrity under both scheduler modes and chaos.

What "the trace is correct" means mechanically (DESIGN.md §9):

* no unclosed spans survive a run — even when tasks retry, stages abort, or
  speculative copies are cancelled;
* every task span nests under exactly one stage span, stages under jobs,
  operators under tasks (``SPAN_NESTING``);
* the span tree's *shape* is deterministic: the same seeded workload
  produces the same (kind, name, parent-kind) multiset in ``sequential``
  and ``threads`` mode, run after run;
* the disabled tracer records nothing and returns the shared no-op span;
* the Chrome-trace export validates against the event-format subset we
  promise.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.topology import private_cluster
from repro.config import Config
from repro.engine.context import EngineContext
from repro.obs.tracer import NOOP_SPAN, Tracer, validate_chrome_trace
from repro.sql.functions import col
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

MODES = ("sequential", "threads")
CHAOS_SEEDS = (11, 23, 47)

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))
DIM_SCHEMA = Schema.of(("node", LONG), ("label", STRING))


def make_context(mode: str, **overrides) -> EngineContext:
    cfg = dict(
        default_parallelism=8,
        shuffle_partitions=8,
        scheduler_mode=mode,
        tracing_enabled=True,
        task_retry_backoff=0.001,
        task_retry_backoff_max=0.01,
    )
    cfg.update(overrides)
    return EngineContext(config=Config(**cfg), topology=private_cluster(num_machines=2))


def run_shuffle_job(context: EngineContext) -> list:
    rdd = context.parallelize(list(range(200)), 8).map(lambda x: (x % 10, x))
    return rdd.reduce_by_key(lambda a, b: a + b).collect()


# ---------------------------------------------------------------------------
# Basic structure
# ---------------------------------------------------------------------------


class TestSpanStructure:
    @pytest.mark.parametrize("mode", MODES)
    def test_clean_run_has_no_integrity_errors(self, mode):
        context = make_context(mode)
        run_shuffle_job(context)
        assert context.tracer.integrity_errors() == []
        assert context.tracer.active_spans() == []

    @pytest.mark.parametrize("mode", MODES)
    def test_every_task_nests_under_exactly_one_stage(self, mode):
        context = make_context(mode)
        run_shuffle_job(context)
        spans = context.tracer.finished_spans()
        stages = {s.span_id for s in spans if s.kind == "stage"}
        tasks = [s for s in spans if s.kind == "task"]
        assert tasks, "expected task spans"
        for task in tasks:
            assert task.parent_id in stages
        jobs = {s.span_id for s in spans if s.kind == "job"}
        for stage in (s for s in spans if s.kind == "stage"):
            assert stage.parent_id in jobs

    @pytest.mark.parametrize("mode", MODES)
    def test_shape_is_deterministic_across_modes_and_runs(self, mode):
        shapes = []
        for _ in range(2):
            context = make_context(mode)
            run_shuffle_job(context)
            shapes.append(context.tracer.span_tree_shape())
        assert shapes[0] == shapes[1]
        # ...and identical to sequential mode's shape.
        reference = make_context("sequential")
        run_shuffle_job(reference)
        assert shapes[0] == reference.tracer.span_tree_shape()

    def test_disabled_tracer_records_nothing(self):
        context = make_context("threads", tracing_enabled=False)
        run_shuffle_job(context)
        assert context.tracer.finished_spans() == []
        assert context.tracer.start_span("x", kind="task") is NOOP_SPAN

    def test_task_span_attrs_carry_identity(self):
        context = make_context("sequential")
        run_shuffle_job(context)
        task = context.tracer.finished_spans(kind="task")[0]
        assert {"stage_id", "partition", "attempt", "executor"} <= set(task.attrs)


# ---------------------------------------------------------------------------
# SQL query nesting: query -> phase -> job -> stage -> task -> operator
# ---------------------------------------------------------------------------


class TestQueryNesting:
    @pytest.mark.parametrize("mode", MODES)
    def test_full_hierarchy_for_indexed_query(self, mode):
        session = Session(
            config=Config(
                default_parallelism=4,
                shuffle_partitions=4,
                scheduler_mode=mode,
                tracing_enabled=True,
            )
        )
        edges = [(i % 20, i % 7, float(i)) for i in range(300)]
        dims = [(k, f"label{k % 3}") for k in range(20)]
        edges_df = session.create_dataframe(edges, EDGE_SCHEMA, "edges")
        dims_df = session.create_dataframe(dims, DIM_SCHEMA, "dims")
        idf = edges_df.create_index("src")
        joined = idf.to_df().join(dims_df, on=("src", "node")).select("src", "label", "w")
        joined.collect_tuples()

        tracer = session.context.tracer
        assert tracer.integrity_errors() == []
        shape = set(tracer.span_tree_shape())
        kinds = {k for k, _, _ in shape}
        assert {"query", "phase", "job", "stage", "task", "operator"} <= kinds
        # Phases nest under the query; the execute phase owns the jobs.
        assert ("phase", "analyze", "query") in shape
        assert ("phase", "optimize", "query") in shape
        assert ("phase", "plan", "query") in shape
        assert ("phase", "execute", "query") in shape
        assert any(k == "job" and p == "phase" for k, _, p in shape)
        # The indexed join's probe runs inside a task.
        assert ("operator", "probe", "task") in shape


# ---------------------------------------------------------------------------
# Chaos: retries, kills and speculation must not leak or orphan spans
# ---------------------------------------------------------------------------


class TestChaosTraceIntegrity:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    @pytest.mark.parametrize("mode", MODES)
    def test_no_orphans_under_chaos_soup(self, mode, seed):
        context = make_context(
            mode,
            chaos_seed=seed,
            chaos_task_failure_prob=0.15,
            chaos_straggler_prob=0.1,
            chaos_straggler_delay=0.002,
            chaos_fetch_failure_prob=0.05,
        )
        expected = sorted(run_shuffle_job(make_context(mode)))
        got = sorted(run_shuffle_job(context))
        assert got == expected
        assert context.tracer.integrity_errors() == []
        assert context.tracer.active_spans() == []
        # Chaos produced failed attempts: their spans exist, closed, with
        # error attrs — still nested under their stage.
        tasks = context.tracer.finished_spans(kind="task")
        assert all(t.end_time is not None for t in tasks)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_retry_attempts_are_separate_task_spans(self, seed):
        context = make_context(
            "sequential",
            chaos_seed=seed,
            chaos_task_failure_prob=0.3,
        )
        run_shuffle_job(context)
        assert context.tracer.integrity_errors() == []
        tasks = context.tracer.finished_spans(kind="task")
        attempts = {(t.attrs["stage_id"], t.attrs["partition"], t.attrs["attempt"]) for t in tasks}
        assert len(attempts) == len(tasks), "each task attempt must be its own span"
        assert any(t.attrs["attempt"] > 0 for t in tasks), "chaos should force retries"

    def test_speculation_spans_close(self):
        context = make_context(
            "threads",
            speculation=True,
            speculation_min_runtime=0.005,
            speculation_multiplier=1.1,
            speculation_quantile=0.5,
            speculation_poll_interval=0.005,
            chaos_seed=7,
            chaos_straggler_prob=0.3,
            chaos_straggler_delay=0.05,
        )
        run_shuffle_job(context)
        assert context.tracer.integrity_errors() == []
        assert context.tracer.active_spans() == []

    @pytest.mark.parametrize("mode", MODES)
    def test_executor_kill_mid_run_keeps_trace_clean(self, mode):
        context = make_context(mode, executor_replacement=True)
        rdd = context.parallelize(list(range(100)), 8).map(lambda x: (x % 5, x))
        shuffled = rdd.reduce_by_key(lambda a, b: a + b)
        first = shuffled.collect()
        victim = context.alive_executor_ids()[0]
        context.kill_executor(victim)
        second = shuffled.collect()
        assert sorted(first) == sorted(second)
        assert context.tracer.integrity_errors() == []


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


class TestChromeExport:
    @pytest.mark.parametrize("mode", MODES)
    def test_export_validates_and_round_trips(self, mode, tmp_path):
        context = make_context(mode)
        run_shuffle_job(context)
        path = tmp_path / "trace.json"
        doc = context.tracer.export(str(path))
        assert validate_chrome_trace(doc) == []
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert len(loaded["traceEvents"]) == len(context.tracer.finished_spans())
        # parent_id args resolve within the document.
        ids = {e["args"]["span_id"] for e in loaded["traceEvents"]}
        for event in loaded["traceEvents"]:
            parent = event["args"].get("parent_id")
            assert parent is None or parent in ids

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{}]}) != []
        bad_ts = {"traceEvents": [{"name": "x", "ph": "X", "ts": -1, "dur": 1, "pid": 0, "tid": 0}]}
        assert any("ts" in e for e in validate_chrome_trace(bad_ts))
        ok = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}]}
        assert validate_chrome_trace(ok) == []

    def test_tracer_reset_clears_state(self):
        tracer = Tracer(enabled=True)
        with tracer.start_span("a", kind="query"):
            pass
        assert tracer.finished_spans()
        tracer.reset()
        assert tracer.finished_spans() == []
        assert tracer.integrity_errors() == []
