"""Cross-module integration scenarios straight from the paper's evaluation.

These are behavioural reproductions at test scale: Fig. 1 (amortization),
Fig. 9 (read-after-write correctness), Fig. 12 (executor kill mid-run),
and the threat-detection pattern (streaming appends + interactive lookups).
"""

import random

import pytest

from repro.config import Config
from repro.engine.context import EngineContext
from repro.sql.functions import col
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, Schema
from repro.workloads import broconn

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))


@pytest.fixture()
def session() -> Session:
    return Session(config=Config(default_parallelism=4, shuffle_partitions=4))


def make_edges(n=800, keys=80, seed=6):
    rng = random.Random(seed)
    return [(rng.randrange(keys), rng.randrange(keys), round(rng.random(), 4)) for _ in range(n)]


class TestAmortization:
    def test_index_shuffle_runs_once_for_repeated_joins(self, session):
        """Fig. 1: the index build (shuffle + insert) happens once; repeated
        joins reuse it, while vanilla re-collects and re-builds each time."""
        rows = make_edges()
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        idf = df.create_index("src").cache_index()
        probe = session.create_dataframe([(k,) for k in range(0, 80, 9)],
                                         Schema.of(("k", LONG)), "p")
        metrics = session.context.metrics
        metrics.reset()
        joined = probe.join(idf.to_df(), on=("k", "src"))
        first = joined.collect_tuples()
        shuffle_after_first = metrics.summary()["shuffle_bytes_written"]
        for _ in range(4):
            assert joined.collect_tuples() == first
        shuffle_after_five = metrics.summary()["shuffle_bytes_written"]
        # No additional index-side shuffle: the only shuffles would be tiny
        # probe-side ones (broadcast path avoids even those).
        assert shuffle_after_five <= shuffle_after_first * 1.01


class TestReadAfterWrite:
    def test_interleaved_joins_and_appends_stay_correct(self, session):
        """Fig. 9's pattern: join, append every few queries, join again."""
        rows = make_edges()
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        idf = df.create_index("src").cache_index()
        reference = {k: [r for r in rows if r[0] == k] for k in range(80)}
        rng = random.Random(1)
        current = idf
        for step in range(20):
            key = rng.randrange(80)
            got = current.lookup_tuples(key)
            assert sorted(got) == sorted(reference[key]), f"step {step}"
            if step % 5 == 4:
                new_row = (key, 10_000 + step, float(step))
                current = current.append_rows([new_row])
                reference[key].append(new_row)


class TestFig12ExecutorKill:
    def test_kill_mid_run_recovers_and_results_stay_correct(self, session):
        rows = make_edges(n=600)
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        idf = df.create_index("src").cache_index()
        probe = session.create_dataframe([(k,) for k in range(0, 80, 11)],
                                         Schema.of(("k", LONG)), "p")
        joined = probe.join(idf.to_df(), on=("k", "src"))
        expected = sorted(joined.collect_tuples())
        ctx = session.context
        victim = ctx.alive_executor_ids()[0]
        ctx.faults.fail_executor_at_job(victim, ctx.job_index + 3)
        for query in range(10):
            assert sorted(joined.collect_tuples()) == expected, f"query {query}"
        assert victim not in ctx.alive_executor_ids()
        assert ctx.faults.killed


class TestThreatDetectionScenario:
    def test_streaming_appends_with_interactive_lookups(self, session):
        """The Section II use case: connections stream in (fine-grained
        appends); analysts run point lookups on suspicious hosts."""
        base = broconn.generate_broconn(400, num_hosts=30)
        conn_df = session.create_dataframe(base, broconn.CONN_SCHEMA, "conn")
        current = conn_df.create_index("orig_h").cache_index()
        all_rows = list(base)
        stream = broconn.generate_broconn(100, num_hosts=30, seed=99)
        for i in range(0, 100, 20):
            batch = stream[i : i + 20]
            current = current.append_rows(batch)
            all_rows.extend(batch)
            suspect = batch[0][2]
            got = current.lookup_tuples(suspect)
            want = [r for r in all_rows if r[2] == suspect]
            assert sorted(got, key=repr) == sorted(want, key=repr)
        assert current.version == 5
        assert current.count() == 500


class TestVanillaVsIndexedFullEquivalence:
    @pytest.mark.parametrize("query_key", [0, 7, 79])
    def test_lookup(self, session, query_key):
        rows = make_edges()
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        vanilla = df.cache()
        idf = df.create_index("src").cache_index()
        v = sorted(vanilla.where(col("src") == query_key).collect_tuples())
        i = sorted(idf.to_df().where(col("src") == query_key).collect_tuples())
        assert v == i

    def test_scan_filter_projection_aggregate(self, session):
        rows = make_edges()
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        vanilla = df.cache()
        idf = df.create_index("src").cache_index()
        for build in (
            lambda d: d.where(col("w") > 0.25).select("dst"),
            lambda d: d.select("src", "dst"),
            lambda d: d.group_by("src").count(),
        ):
            v = sorted(build(vanilla).collect_tuples())
            i = sorted(build(idf.to_df()).collect_tuples())
            assert v == i
