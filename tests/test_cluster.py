"""Cluster substrate: topology presets, network/NUMA models, metrics, faults."""

import pytest

from repro.cluster.faults import FaultInjector
from repro.cluster.metrics import MetricsCollector, TaskMetrics
from repro.cluster.network import NetworkModel, ethernet_10g, infiniband_fdr
from repro.cluster.numa import NUMAModel
from repro.cluster.topology import (
    ClusterTopology,
    ExecutorSpec,
    Machine,
    NUMADomain,
    ec2_i3_8xlarge,
    ec2_i3_xlarge,
    make_executors,
    private_cluster,
)


class TestTopology:
    def test_private_cluster_preset_matches_table1(self):
        topo = private_cluster(num_machines=4)
        assert topo.num_machines == 4
        for m in topo.machines:
            assert m.cores == 16  # dual-socket E5-2630-v3
            assert len(m.numa_domains) == 2
        # Best Fig. 4 deployment: 4 executors x 4 cores, pinned.
        assert len(topo.executors) == 16
        assert all(ex.cores == 4 for ex in topo.executors)
        assert all(ex.pinned_domain is not None for ex in topo.executors)
        assert topo.total_cores == 64

    def test_ec2_presets(self):
        small = ec2_i3_xlarge(4)
        assert all(m.cores == 4 for m in small.machines)
        big = ec2_i3_8xlarge(2)
        assert all(m.cores == 16 for m in big.machines)

    def test_executor_lookup_and_machine_of(self):
        topo = private_cluster(2)
        ex = topo.executors[0]
        assert topo.executor(ex.executor_id) is ex
        assert topo.machine_of(ex.executor_id) == ex.machine_id
        with pytest.raises(KeyError):
            topo.executor("nope")

    def test_same_machine(self):
        topo = private_cluster(2)
        per_machine: dict[int, list[str]] = {}
        for ex in topo.executors:
            per_machine.setdefault(ex.machine_id, []).append(ex.executor_id)
        m0 = per_machine[0]
        m1 = per_machine[1]
        assert topo.same_machine(m0[0], m0[1])
        assert not topo.same_machine(m0[0], m1[0])

    def test_slots_count(self):
        topo = private_cluster(1)
        assert len(list(topo.slots())) == topo.total_cores

    def test_without_executor(self):
        topo = private_cluster(1)
        victim = topo.executors[0].executor_id
        smaller = topo.without_executor(victim)
        assert len(smaller.executors) == len(topo.executors) - 1
        with pytest.raises(KeyError):
            smaller.executor(victim)

    def test_invalid_executor_placement_rejected(self):
        m = Machine(0, (NUMADomain(0, 0, 4),))
        with pytest.raises(ValueError):
            ClusterTopology([m], [ExecutorSpec("e", 99, 4)])
        with pytest.raises(ValueError):
            ClusterTopology([m], [ExecutorSpec("e", 0, 4, pinned_domain=5)])

    def test_make_executors_round_robins_domains(self):
        machines = [Machine(0, (NUMADomain(0, 0, 8), NUMADomain(0, 1, 8)))]
        exes = make_executors(machines, 4, 4, numa_pinned=True)
        assert [e.pinned_domain for e in exes] == [0, 1, 0, 1]


class TestNetworkModel:
    def test_cross_machine_slower_than_local(self):
        net = NetworkModel()
        remote = net.transfer_time(10_000_000, cross_machine=True)
        local = net.transfer_time(10_000_000, cross_machine=False)
        assert remote > local

    def test_latency_dominates_small_transfers(self):
        net = NetworkModel(latency=1e-3)
        t = net.transfer_time(10, cross_machine=True)
        assert t == pytest.approx(1e-3, rel=0.01)

    def test_counters(self):
        net = NetworkModel()
        net.transfer_time(100, cross_machine=True)
        net.transfer_time(50, cross_machine=False)
        assert net.bytes_cross_machine == 100
        assert net.bytes_local == 50
        assert net.total_bytes == 150
        net.reset_counters()
        assert net.total_bytes == 0

    def test_broadcast_scales_logarithmically(self):
        net = NetworkModel()
        t4 = net.broadcast_time(1_000_000, 4)
        t16 = net.broadcast_time(1_000_000, 16)
        assert t16 < 4 * t4  # tree, not linear
        assert net.broadcast_time(1000, 1) == 0.0

    def test_infiniband_faster_than_ethernet(self):
        ib, eth = infiniband_fdr(), ethernet_10g()
        assert ib.transfer_time(10**8, True) < eth.transfer_time(10**8, True)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1, True)


class TestNUMAModel:
    def test_pinned_executor_no_remote_accesses(self):
        topo = private_cluster(1, executors_per_machine=4, cores_per_executor=4, numa_pinned=True)
        model = NUMAModel()
        ex = topo.executors[0]
        assert model.remote_fraction(ex, topo) == 0.0

    def test_unpinned_executor_pays_remote_penalty(self):
        topo = private_cluster(1, executors_per_machine=1, cores_per_executor=16, numa_pinned=False)
        model = NUMAModel()
        ex = topo.executors[0]
        assert model.remote_fraction(ex, topo) == pytest.approx(0.5)
        assert model.task_time_factor(ex, topo) > 1.1

    def test_fig4_ordering_fat_unpinned_slowest(self):
        """Fig. 4's qualitative finding: fine-grained pinned executors beat
        one fat unpinned executor."""
        model = NUMAModel()
        fat = private_cluster(1, 1, 16, numa_pinned=False)
        fine = private_cluster(1, 4, 4, numa_pinned=True)
        f_fat = model.task_time_factor(fat.executors[0], fat)
        f_fine = model.task_time_factor(fine.executors[0], fine)
        assert f_fine < f_fat


class TestMetricsCollector:
    def _collector(self):
        return MetricsCollector(private_cluster(1))

    def test_record_and_summary(self):
        mc = self._collector()
        ex = mc.topology.executors[0].executor_id
        mc.record(TaskMetrics(stage_id=0, partition=0, executor_id=ex, compute_seconds=0.5))
        mc.record(TaskMetrics(stage_id=0, partition=1, executor_id=ex, compute_seconds=0.3))
        s = mc.summary()
        assert s["tasks"] == 2
        assert s["compute_seconds"] == pytest.approx(0.8)

    def test_stage_makespan_uses_parallelism(self):
        mc = self._collector()
        ex = mc.topology.executors[0].executor_id
        # 16 cores, 16 equal tasks of 1s -> makespan ~1s, not 16s.
        for p in range(16):
            mc.record(TaskMetrics(stage_id=1, partition=p, executor_id=ex, compute_seconds=1.0))
        assert mc.stage_makespan(1) == pytest.approx(1.0, rel=0.1)

    def test_remote_fetch_adds_time(self):
        mc = self._collector()
        ex = mc.topology.executors[0].executor_id
        fast = TaskMetrics(stage_id=0, partition=0, executor_id=ex, compute_seconds=0.1)
        slow = TaskMetrics(
            stage_id=0, partition=1, executor_id=ex, compute_seconds=0.1,
            shuffle_bytes_read_remote=10**9,
        )
        assert mc.simulated_task_seconds(slow) > mc.simulated_task_seconds(fast)

    def test_job_makespan_sums_stages(self):
        mc = self._collector()
        ex = mc.topology.executors[0].executor_id
        mc.record(TaskMetrics(stage_id=0, partition=0, executor_id=ex, compute_seconds=1.0))
        mc.record(TaskMetrics(stage_id=1, partition=0, executor_id=ex, compute_seconds=2.0))
        assert mc.job_makespan() == pytest.approx(mc.stage_makespan(0) + mc.stage_makespan(1))

    def test_reset(self):
        mc = self._collector()
        ex = mc.topology.executors[0].executor_id
        mc.record(TaskMetrics(stage_id=0, partition=0, executor_id=ex, compute_seconds=1.0))
        mc.reset()
        assert mc.summary()["tasks"] == 0


class TestFaultInjector:
    def test_fires_once_at_job(self):
        fi = FaultInjector()
        fi.fail_executor_at_job("e1", job_index=5)
        assert fi.check(4) == []
        assert fi.check(5) == ["e1"]
        assert fi.check(6) == []  # one-shot
        assert fi.killed == [(5, "e1")]

    def test_multiple_schedules(self):
        fi = FaultInjector()
        fi.fail_executor_at_job("a", 1)
        fi.fail_executor_at_job("b", 1)
        assert sorted(fi.check(1)) == ["a", "b"]

    def test_custom_predicate_and_reset(self):
        fi = FaultInjector()
        fi.fail_when(lambda j: j % 2 == 0, "e")
        assert fi.check(2) == ["e"]
        fi.reset()
        assert fi.check(2) == []
