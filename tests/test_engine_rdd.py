"""RDD transformations/actions, caching, partitioners, shuffles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner, RangePartitioner
from repro.engine.rdd import PrunedRDD
from repro.config import Config


@pytest.fixture()
def ctx() -> EngineContext:
    return EngineContext(config=Config(default_parallelism=4, shuffle_partitions=4))


class TestBasicTransformations:
    def test_parallelize_collect_preserves_order(self, ctx):
        data = list(range(100))
        assert ctx.parallelize(data, 7).collect() == data

    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).map(lambda x: x * 10).collect() == [10, 20, 30]

    def test_filter(self, ctx):
        rdd = ctx.parallelize(range(20), 3).filter(lambda x: x % 2 == 0)
        assert rdd.collect() == list(range(0, 20, 2))

    def test_flat_map(self, ctx):
        rdd = ctx.parallelize([1, 2], 1).flat_map(lambda x: [x] * x)
        assert rdd.collect() == [1, 2, 2]

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.parallelize(range(8), 4).map_partitions_with_index(
            lambda i, it: [(i, sum(it))]
        )
        got = rdd.collect()
        assert [i for i, _ in got] == [0, 1, 2, 3]
        assert sum(s for _, s in got) == sum(range(8))

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3], 1)
        u = a.union(b)
        assert u.num_partitions == 3
        assert u.collect() == [1, 2, 3]

    def test_coalesce(self, ctx):
        rdd = ctx.parallelize(range(100), 10).coalesce(3)
        assert rdd.num_partitions == 3
        assert rdd.collect() == list(range(100))

    def test_zip_with_index(self, ctx):
        rdd = ctx.parallelize(list("abcde"), 3).zip_with_index()
        assert rdd.collect() == [("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)]

    def test_sample_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        s1 = rdd.sample(0.1, seed=1).collect()
        s2 = rdd.sample(0.1, seed=1).collect()
        assert s1 == s2
        assert 40 < len(s1) < 200

    def test_zip_partitions_requires_equal_counts(self, ctx):
        a = ctx.parallelize(range(4), 2)
        b = ctx.parallelize(range(4), 4)
        with pytest.raises(ValueError):
            a.zip_partitions(b, lambda i, x, y: [])


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(57), 5).count() == 57

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(101), 4).reduce(lambda a, b: a + b) == 5050

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 2).reduce(lambda a, b: a + b)

    def test_take_stops_early(self, ctx):
        rdd = ctx.parallelize(range(1000), 10)
        assert rdd.take(5) == [0, 1, 2, 3, 4]
        assert rdd.take(0) == []
        assert rdd.first() == 0

    def test_take_more_than_available(self, ctx):
        assert ctx.parallelize([1, 2], 2).take(10) == [1, 2]


class TestKeyedOperations:
    def test_reduce_by_key(self, ctx):
        pairs = ctx.parallelize([(i % 3, i) for i in range(30)], 4)
        got = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        want = {k: sum(i for i in range(30) if i % 3 == k) for k in range(3)}
        assert got == want

    def test_group_by_key(self, ctx):
        pairs = ctx.parallelize([(i % 2, i) for i in range(10)], 3)
        got = {k: sorted(v) for k, v in pairs.group_by_key().collect()}
        assert got == {0: [0, 2, 4, 6, 8], 1: [1, 3, 5, 7, 9]}

    def test_rdd_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 2)
        b = ctx.parallelize([(1, "x"), (3, "y")], 2)
        got = sorted(a.join(b).collect())
        assert got == [(1, ("a", "x")), (1, ("c", "x"))]

    def test_partition_by_places_keys_consistently(self, ctx):
        part = HashPartitioner(4)
        rdd = ctx.parallelize([(k, k) for k in range(100)], 5).partition_by(part)
        per_part = ctx.run_job(rdd, lambda it, _ctx: [k for k, _ in it])
        for pid, keys in enumerate(per_part):
            for k in keys:
                assert part.partition(k) == pid

    def test_partition_by_skips_shuffle_when_copartitioned(self, ctx):
        part = HashPartitioner(4)
        rdd = ctx.parallelize([(k, k) for k in range(10)], 2).partition_by(part)
        again = rdd.partition_by(HashPartitioner(4))
        assert again is rdd  # equal partitioner: no new shuffle


class TestCaching:
    def test_cache_computes_once(self, ctx):
        calls = []

        def trace(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(10), 2).map(trace).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 10  # second collect served from cache

    def test_unpersist_recomputes(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(5), 1).map(lambda x: calls.append(x) or x).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.cached = False
        rdd.collect()
        assert len(calls) == 10

    def test_cache_survives_executor_loss(self, ctx):
        rdd = ctx.parallelize(range(50), 4).map(lambda x: x + 1).cache()
        assert sorted(rdd.collect()) == list(range(1, 51))
        ctx.kill_executor(ctx.alive_executor_ids()[0])
        assert sorted(rdd.collect()) == list(range(1, 51))

    def test_preferred_locations_after_caching(self, ctx):
        rdd = ctx.parallelize(range(8), 2).cache()
        rdd.collect()
        assert rdd.preferred_locations(0)  # registered somewhere


class TestPrunedRDD:
    def test_exposes_selected_partitions(self, ctx):
        rdd = ctx.parallelize(range(40), 4)  # partitions of 10
        pruned = PrunedRDD(rdd, [2])
        assert pruned.num_partitions == 1
        assert pruned.collect() == list(range(20, 30))


class TestPartitioners:
    def test_hash_partitioner_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_hash_partitioner_rejects_zero(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    @given(st.integers(), st.integers(min_value=1, max_value=32))
    @settings(max_examples=50)
    def test_hash_partition_in_range(self, key, n):
        assert 0 <= HashPartitioner(n).partition(key) < n

    def test_range_partitioner_orders_keys(self):
        rp = RangePartitioner([10, 20])
        assert rp.partition(5) == 0
        assert rp.partition(10) == 1
        assert rp.partition(15) == 1
        assert rp.partition(25) == 2

    def test_range_partitioner_from_sample(self):
        rp = RangePartitioner.from_sample(list(range(100)), 4)
        assert rp.num_partitions <= 4
        parts = [rp.partition(k) for k in range(100)]
        assert parts == sorted(parts)  # monotone in key

    def test_range_partitioner_skewed_sample(self):
        rp = RangePartitioner.from_sample([5] * 100, 4)
        assert rp.num_partitions >= 1
        assert rp.partition(5) in range(rp.num_partitions)

    def test_partition_array_matches_scalar(self):
        part = HashPartitioner(8)
        keys = list(range(-50, 50))
        assert part.partition_array(keys).tolist() == [part.partition(k) for k in keys]
