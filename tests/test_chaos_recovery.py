"""Chaos-hardened recovery: mid-stage faults, healing, speculation, events.

The recovery subsystem under test (DESIGN.md §8):

* chaos layer — seeded mid-stage executor kills, transient task failures,
  stragglers and flaky fetches (:class:`repro.cluster.faults.FaultInjector`);
* healing — killed executors re-register after a configurable delay and the
  scheduler picks the replacement up live;
* speculative execution — stragglers get a second attempt on another
  executor, first result wins;
* retry backoff + per-stage attempt budget instead of blind resubmits;
* the paper's version-number staleness guard exercised through recovery;
* every recovery action emitting a structured event into the metrics
  collector, so a Fig. 12-style run can attribute *what* recovery cost.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.topology import private_cluster
from repro.config import Config
from repro.engine.context import EngineContext
from repro.engine.dag import JobFailedError
from repro.engine.partition import TaskContext
from repro.engine.partitioner import HashPartitioner
from repro.engine.scheduler import NoAliveExecutorsError, TaskFailure
from repro.engine.shuffle import FetchFailedError
from repro.engine.task import ResultStage
from repro.sql.session import Session
from tests.conftest import EDGE_SCHEMA, make_edges

MODES = ("sequential", "threads", "processes")


def make_context(mode: str, **overrides) -> EngineContext:
    cfg = dict(
        default_parallelism=8,
        shuffle_partitions=8,
        scheduler_mode=mode,
        row_batch_size=8192,
        task_retry_backoff=0.001,
        task_retry_backoff_max=0.01,
    )
    cfg.update(overrides)
    return EngineContext(config=Config(**cfg), topology=private_cluster(num_machines=2))


# ---------------------------------------------------------------------------
# Chaos layer: determinism and convergence
# ---------------------------------------------------------------------------


class TestChaosDeterminism:
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("mode", MODES)
    def test_chaos_soup_converges_across_seeds(self, mode, seed):
        """Transient task failures + stragglers + flaky fetches, all at
        once: every seed and both modes must converge to correct results
        with no hang."""
        data = [(i % 11, i) for i in range(1500)]
        expected = sorted(
            make_context("sequential").parallelize(data, 8).reduce_by_key(lambda a, b: a + b).collect()
        )
        ctx = make_context(
            mode,
            chaos_seed=seed,
            chaos_task_failure_prob=0.15,
            chaos_straggler_prob=0.1,
            chaos_straggler_delay=0.005,
            chaos_fetch_failure_prob=0.04,
        )
        shuffled = ctx.parallelize(data, 8).reduce_by_key(lambda a, b: a + b)
        for _ in range(3):
            assert sorted(shuffled.collect()) == expected
        assert ctx.task_scheduler.busy == {}

    def test_same_seed_same_injections_sequential(self):
        """Chaos draws are keyed by (seed, decision site), so an identical
        sequential workload reproduces the identical fault schedule."""

        def run() -> tuple[list, dict]:
            ctx = make_context(
                "sequential",
                chaos_seed=42,
                chaos_task_failure_prob=0.25,
                chaos_fetch_failure_prob=0.05,
            )
            shuffled = ctx.parallelize([(i % 7, i) for i in range(700)], 8).reduce_by_key(
                lambda a, b: a + b
            )
            results = [sorted(shuffled.collect()) for _ in range(2)]
            return results, ctx.metrics.recovery_summary()

        (res_a, sum_a), (res_b, sum_b) = run(), run()
        assert res_a == res_b
        assert sum_a == sum_b
        assert sum_a.get("chaos_task_failure", 0) + sum_a.get("chaos_fetch_failure", 0) > 0

    @pytest.mark.parametrize("mode", MODES)
    def test_transient_chaos_failures_are_retried(self, mode):
        ctx = make_context(mode, chaos_seed=5, chaos_task_failure_prob=0.3)
        got = sorted(ctx.parallelize(range(200), 8).map(lambda x: x * 2).collect())
        assert got == [x * 2 for x in range(200)]
        summary = ctx.metrics.recovery_summary()
        assert summary.get("chaos_task_failure", 0) >= 1
        assert summary.get("task_retry", 0) >= summary.get("chaos_task_failure", 0)

    @pytest.mark.parametrize("mode", MODES)
    def test_flaky_fetch_drives_cheap_resubmit(self, mode):
        """A chaos fetch failure leaves the map output intact: the DAG
        scheduler's retry recomputes nothing and just re-runs the reduce."""
        ctx = make_context(mode, chaos_seed=11, chaos_fetch_failure_prob=0.08)
        data = [(i % 5, i) for i in range(400)]
        shuffled = ctx.parallelize(data, 8).partition_by(HashPartitioner(8))
        for _ in range(4):
            assert sorted(shuffled.collect()) == sorted(data)
        summary = ctx.metrics.recovery_summary()
        assert summary.get("chaos_fetch_failure", 0) >= 1
        assert summary.get("stage_resubmit", 0) >= 1

    def test_mid_stage_kill_via_task_counter(self):
        """fail_executor_at_task kills while the stage is in flight; the
        run still converges and the kill is attributed to the job."""
        ctx = make_context("threads")
        data = [(i % 9, i) for i in range(900)]
        shuffled = ctx.parallelize(data, 8).partition_by(HashPartitioner(8))
        assert sorted(shuffled.collect()) == sorted(data)  # materialize maps
        victim = ctx.alive_executor_ids()[0]
        ctx.faults.fail_executor_at_task(victim, ctx.faults.task_launches + 3)
        assert sorted(shuffled.collect()) == sorted(data)
        assert not ctx.executors[victim].alive
        assert any(e == victim for _j, e in ctx.faults.killed)
        lost = [e for e in ctx.metrics.recovery_events if e.kind == "executor_lost"]
        assert any(e.executor_id == victim and "chaos" in e.detail for e in lost)


# ---------------------------------------------------------------------------
# Concurrent failure semantics (threads mode)
# ---------------------------------------------------------------------------


class TestConcurrentFailure:
    def test_fetch_failure_supersedes_collateral_errors(self):
        """When a stage sees both a FetchFailedError and ordinary task
        errors, the fetch failure must win: the DAG scheduler can recover
        from it, while a TaskFailure would kill the job."""
        ctx = make_context("threads", max_task_retries=0, task_retry_backoff=0.0)
        rdd = ctx.parallelize(range(8), 8)

        def func(it, tctx: TaskContext):
            if tctx.partition_index == 0:
                time.sleep(0.05)
                raise FetchFailedError(999, 1)
            if tctx.partition_index == 1:
                raise ValueError("collateral damage")
            return list(it)

        stage = ResultStage(stage_id=9999, rdd=rdd, parents=[], func=func)
        with pytest.raises(FetchFailedError):
            ctx.task_scheduler.run_stage(stage, list(range(8)), job_index=1)
        assert ctx.task_scheduler.busy == {}  # no slot leaks after the abort

    def test_kill_mid_flight_matches_sequential_and_leaks_nothing(self):
        """Kill a map-output producer *while* a threads-mode reduce stage is
        in flight: results must be byte-identical to sequential mode, the
        fetch-failure path must drive recovery, and no busy slots leak."""
        data = [(i % 13, i) for i in range(2600)]
        sequential = sorted(
            make_context("sequential")
            .parallelize(data, 8)
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )

        ctx = make_context("threads")
        shuffled = ctx.parallelize(data, 8).partition_by(HashPartitioner(8))
        assert len(shuffled.collect()) == len(data)  # materialize map outputs
        producers = sorted(
            {
                out.executor_id
                for slots in ctx.shuffle_manager._outputs.values()
                for out in slots
                if out is not None
            }
        )
        victim = producers[0]
        ctx.faults.fail_executor_at_task(victim, ctx.faults.task_launches + 2)
        got = sorted(shuffled.reduce_by_key(lambda a, b: a + b).collect())
        assert got == sequential
        assert ctx.task_scheduler.busy == {}
        summary = ctx.metrics.recovery_summary()
        assert summary.get("executor_lost", 0) >= 1
        # FetchFailedError superseded any collateral dead-executor errors:
        # the job recovered (no job_failed event) via stage resubmission.
        assert summary.get("fetch_failed", 0) >= 1
        assert summary.get("job_failed", 0) == 0


# ---------------------------------------------------------------------------
# Healing: executor replacement
# ---------------------------------------------------------------------------


class TestExecutorReplacement:
    @pytest.mark.parametrize("mode", MODES)
    def test_killed_executor_returns_after_delay(self, mode):
        ctx = make_context(
            mode, executor_replacement=True, executor_restart_delay_tasks=4
        )
        data = list(range(800))
        rdd = ctx.parallelize(data, 8)
        assert sorted(rdd.collect()) == data
        victim = ctx.alive_executor_ids()[0]
        ctx.kill_executor(victim)
        assert victim not in ctx.alive_executor_ids()
        assert sorted(rdd.collect()) == data  # >= 8 launches tick the timer
        assert victim in ctx.alive_executor_ids()
        replaced = [
            e for e in ctx.metrics.recovery_events if e.kind == "executor_replaced"
        ]
        assert any(e.executor_id == victim for e in replaced)
        # The replacement came back with a fresh, empty block store.
        assert ctx.executors[victim].block_manager.block_ids() == []

    @pytest.mark.parametrize("mode", MODES)
    def test_replacement_picked_up_by_placement(self, mode):
        ctx = make_context(
            mode, executor_replacement=True, executor_restart_delay_tasks=2
        )
        rdd = ctx.parallelize(range(400), 8)
        rdd.collect()
        victim = ctx.alive_executor_ids()[0]
        ctx.kill_executor(victim)
        rdd.collect()  # replacement registers during this job
        placed: set[str] = set()
        for _ in range(4):  # round-robin ANY placement reaches every executor
            rdd.collect()
            placed |= {e for e, _lvl in ctx.task_scheduler.last_placements}
        assert victim in placed

    def test_all_dead_with_pending_replacement_heals(self):
        """Zero alive executors but a replacement pending: the scheduler
        promotes it immediately instead of failing the job."""
        ctx = make_context(
            "sequential", executor_replacement=True, executor_restart_delay_tasks=50
        )
        for e in list(ctx.alive_executor_ids()):
            ctx.kill_executor(e)
        assert ctx.alive_executor_ids() == []
        assert sorted(ctx.parallelize(range(40), 4).collect()) == list(range(40))
        assert len(ctx.alive_executor_ids()) >= 1


class TestAllExecutorsDead:
    @pytest.mark.parametrize("mode", MODES)
    def test_fails_fast_with_clear_error(self, mode):
        ctx = make_context(mode)
        for e in list(ctx.alive_executor_ids()):
            ctx.kill_executor(e)
        with pytest.raises(NoAliveExecutorsError):
            ctx.parallelize(range(8), 4).collect()
        # The error is a JobFailedError (clear, non-retryable) and keeps
        # backwards compatibility with RuntimeError expectations.
        assert issubclass(NoAliveExecutorsError, JobFailedError)
        assert issubclass(NoAliveExecutorsError, RuntimeError)
        # No retries were spun against the empty cluster.
        assert ctx.metrics.recovery_summary().get("task_retry", 0) == 0
        assert ctx.task_scheduler.busy == {}


# ---------------------------------------------------------------------------
# Retry backoff and the per-stage attempt budget
# ---------------------------------------------------------------------------


class TestRetryBudget:
    @pytest.mark.parametrize("mode", MODES)
    def test_stage_budget_bounds_correlated_failures(self, mode):
        ctx = make_context(
            mode, max_task_retries=4, stage_attempt_budget=2, task_retry_backoff=0.001
        )

        def bad(x):
            raise ValueError("always broken")

        with pytest.raises(TaskFailure):
            ctx.parallelize(range(64), 8).map(bad).collect()
        summary = ctx.metrics.recovery_summary()
        assert summary.get("stage_budget_exhausted", 0) >= 1
        # Only the budgeted retries ran, not 8 tasks x 4 retries.
        assert summary.get("task_retry", 0) == 2
        assert ctx.task_scheduler.busy == {}

    def test_retries_back_off_exponentially(self):
        ctx = make_context(
            "sequential", task_retry_backoff=0.01, task_retry_backoff_max=0.5
        )
        state = {"n": 0}

        def flaky(x):
            if x == 0 and state["n"] < 3:
                state["n"] += 1
                raise OSError("transient")
            return x

        t0 = time.perf_counter()
        assert sorted(ctx.parallelize(range(8), 4).map(flaky).collect()) == list(range(8))
        elapsed = time.perf_counter() - t0
        retries = [e for e in ctx.metrics.recovery_events if e.kind == "task_retry"]
        assert [e.seconds for e in retries] == [0.01, 0.02, 0.04]
        assert elapsed >= 0.07  # the backoffs were actually slept


# ---------------------------------------------------------------------------
# Speculative execution
# ---------------------------------------------------------------------------


class TestSpeculation:
    def test_straggler_rescued_by_speculative_copy(self):
        ctx = make_context(
            "threads",
            speculation=True,
            speculation_quantile=0.5,
            speculation_multiplier=1.5,
            speculation_min_runtime=0.03,
            speculation_poll_interval=0.01,
        )
        # Partition 2's first (non-speculative) launch sleeps 1s; everyone
        # else is instant. The copy runs clean on another executor and wins.
        ctx.faults.delay_task_once(split=2, delay=1.0)
        t0 = time.perf_counter()
        got = sorted(ctx.parallelize(range(80), 8).map(lambda x: x + 1).collect())
        elapsed = time.perf_counter() - t0
        assert got == [x + 1 for x in range(80)]
        summary = ctx.metrics.recovery_summary()
        assert summary.get("speculative_launch", 0) == 1
        assert summary.get("speculative_win", 0) == 1
        # First-result-wins: the sleeping loser was woken and discarded, so
        # the stage did not pay the full injected straggler delay.
        assert elapsed < 0.9
        assert ctx.task_scheduler.busy == {}

    def test_speculative_copy_runs_on_other_executor(self):
        ctx = make_context(
            "threads",
            speculation=True,
            speculation_quantile=0.5,
            speculation_min_runtime=0.03,
            speculation_poll_interval=0.01,
        )
        ctx.faults.delay_task_once(split=0, delay=0.8)
        assert len(ctx.parallelize(range(40), 8).collect()) == 40
        events = ctx.metrics.recovery_events
        launch = next(e for e in events if e.kind == "speculative_launch")
        win = next(e for e in events if e.kind == "speculative_win")
        assert launch.partition == win.partition == 0
        assert win.executor_id is not None
        assert win.executor_id != launch.executor_id  # placed off the straggler

    def test_original_win_discards_copy(self):
        """When the original finishes first the copy is the loser: exactly
        one result per split, tagged speculative_loss."""
        ctx = make_context(
            "threads",
            speculation=True,
            speculation_quantile=0.25,
            speculation_multiplier=1.1,
            speculation_min_runtime=0.02,
            speculation_poll_interval=0.005,
        )

        def slowish(x):
            if x == 5:
                time.sleep(0.08)  # slow but finishes; the copy also sleeps
            return x

        got = sorted(ctx.parallelize(range(80), 8).map(slowish).collect())
        assert got == list(range(80))
        summary = ctx.metrics.recovery_summary()
        wins = summary.get("speculative_win", 0)
        losses = summary.get("speculative_loss", 0)
        assert wins + losses == summary.get("speculative_launch", 0)

    def test_speculation_off_by_default(self):
        ctx = make_context("threads")
        ctx.faults.delay_task_once(split=1, delay=0.2)
        assert len(ctx.parallelize(range(40), 8).collect()) == 40
        assert ctx.metrics.recovery_summary().get("speculative_launch", 0) == 0


# ---------------------------------------------------------------------------
# Shuffle edge cases
# ---------------------------------------------------------------------------


class TestShuffleEdgeCases:
    @pytest.mark.parametrize("mode", MODES)
    def test_zero_map_shuffle_fetches_empty(self, mode):
        """A registered shuffle with zero maps has nothing to fetch — that
        is an empty result, not a FetchFailedError loop ending in
        JobFailedError after 8 stage attempts."""
        ctx = make_context(mode)
        ctx.shuffle_manager.register_shuffle(777, 0)
        tctx = TaskContext(
            stage_id=1,
            partition_index=0,
            attempt=0,
            executor_id=ctx.alive_executor_ids()[0],
            job_index=1,
        )
        assert list(ctx.shuffle_manager.fetch(777, 0, tctx)) == []
        assert ctx.shuffle_manager.missing_maps(777) == []
        assert ctx.metrics.recovery_summary().get("fetch_failed", 0) == 0

    def test_unregistered_shuffle_still_fails(self):
        ctx = make_context("sequential")
        tctx = TaskContext(
            stage_id=1,
            partition_index=0,
            attempt=0,
            executor_id=ctx.alive_executor_ids()[0],
            job_index=1,
        )
        with pytest.raises(FetchFailedError) as excinfo:
            next(ctx.shuffle_manager.fetch(31337, 0, tctx))
        assert excinfo.value.map_id == -1
        assert ctx.metrics.recovery_summary().get("fetch_failed", 0) == 1


# ---------------------------------------------------------------------------
# Staleness guard through recovery (Section III-D)
# ---------------------------------------------------------------------------


class TestStalenessGuard:
    def test_stale_replayed_copy_detected_and_rebuilt(self):
        """Plant a stale (pre-append) replayed partition where the current
        version's block should be: the version guard must refuse it, rebuild
        from lineage + replay log, and log the recovery event — never serve
        stale rows."""
        session = Session(
            config=Config(
                default_parallelism=4,
                shuffle_partitions=4,
                row_batch_size=4096,
            )
        )
        rows = make_edges(n=400, keys=40)
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        idf = df.create_index("src").cache_index()
        idf2 = idf.append_rows([(7, 999, 9.9)]).cache_index()
        ctx = session.context
        assert idf2.version == idf.version + 1

        # Replay a stale copy: overwrite every cached v1 block with the v0
        # partition object for the same split (a "replayed copy" predating
        # the append).
        planted = 0
        for split in range(idf2.num_partitions):
            stale = None
            for runtime in ctx.executors.values():
                block = runtime.block_manager.get((idf.rdd.rdd_id, split))
                if block is not None:
                    stale = block
                    break
            if stale is None:
                continue
            for runtime in ctx.executors.values():
                if runtime.block_manager.contains((idf2.rdd.rdd_id, split)):
                    runtime.block_manager.put((idf2.rdd.rdd_id, split), stale)
                    planted += 1
        assert planted > 0

        expected = sorted([r for r in rows if r[0] == 7] + [(7, 999, 9.9)])
        assert sorted(idf2.lookup_tuples(7)) == expected  # appended row served
        events = [
            e for e in ctx.metrics.recovery_events if e.kind == "stale_partition_rebuilt"
        ]
        assert events, "the stale copy must be detected, not served"
        assert all("stale_version=0" in e.detail for e in events)
        assert all(e.job_index > 0 for e in events)  # attributed to the query

    def test_recomputed_partition_carries_current_version(self):
        """Recovery after executor loss rebuilds indexed partitions at the
        *current* version number."""
        session = Session(
            config=Config(default_parallelism=4, shuffle_partitions=4, row_batch_size=4096)
        )
        rows = make_edges(n=300, keys=30)
        idf = (
            session.create_dataframe(rows, EDGE_SCHEMA, "edges")
            .create_index("src")
            .cache_index()
            .append_rows([(3, 111, 1.1)])
            .cache_index()
        )
        ctx = session.context
        for e in list(ctx.alive_executor_ids())[:-1]:
            ctx.kill_executor(e)

        def read_version(it, _ctx):
            return next(iter(it)).version

        assert ctx.run_job(idf.rdd, read_version) == [1] * idf.num_partitions


# ---------------------------------------------------------------------------
# Fig. 12-style chaos run (the acceptance scenario)
# ---------------------------------------------------------------------------


class TestFig12ChaosRun:
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 17])
    def test_200_queries_survive_mid_query_kill_with_replacement(self, seed):
        """Executor killed mid-query under scheduler_mode="threads" with
        replacement enabled: all 200 queries complete correctly, the
        recovery-event log attributes the index-recreation cost to the
        in-flight query, and the cluster heals."""
        ctx = EngineContext(
            config=Config(
                default_parallelism=4,
                shuffle_partitions=4,
                row_batch_size=4096,
                scheduler_mode="threads",
                executor_replacement=True,
                executor_restart_delay_tasks=8,
                chaos_seed=seed,
            ),
            topology=private_cluster(num_machines=2, executors_per_machine=2),
        )
        session = Session(context=ctx)
        rows = make_edges(n=1200, keys=48, seed=seed)
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        idf = df.create_index("src").cache_index()
        probe = session.create_dataframe(
            [(k,) for k in range(0, 48, 5)], EDGE_SCHEMA.select(["src"]), "probe"
        )
        joined = probe.join(idf.to_df(), on=("src", "src"))
        expected = sorted(joined.collect_tuples())
        assert expected

        # Kill an executor that owns indexed partitions, mid-task-stream,
        # somewhere inside the 200-query run.
        victim = None
        for split in range(idf.num_partitions):
            locs = ctx.block_manager_master.locations((idf.rdd.rdd_id, split))
            if locs:
                victim = locs[0]
                break
        assert victim is not None
        ctx.faults.fail_executor_at_task(victim, ctx.faults.task_launches + 150)

        job_ranges: list[tuple[int, int]] = []  # per query: (first_job, last_job)
        for _q in range(200):
            start = ctx.job_index + 1
            got = sorted(joined.collect_tuples())
            job_ranges.append((start, ctx.job_index))
            assert got == expected  # every query correct through recovery

        # The kill fired mid-run, inside one query's job range.
        assert ctx.faults.killed, "the scheduled mid-stream kill must fire"
        kill_job = ctx.faults.killed[0][0]

        def query_of(job: int) -> int:
            return next(q for q, (lo, hi) in enumerate(job_ranges) if lo <= job <= hi)

        kill_query = query_of(kill_job)
        assert 0 < kill_query < 199  # genuinely mid-run

        # Recovery observability: the index-recreation cost is attributed to
        # the single query that was in flight when the lost partition was
        # rebuilt (the first one to touch it after the kill — Fig. 12's
        # "query in flight pays ~13 s, the rest run at normal speed"), not
        # smeared over the run.
        rebuilds = [
            e for e in ctx.metrics.recovery_events if e.kind == "block_recomputed"
        ]
        assert rebuilds, "lost indexed partitions must be rebuilt"
        paying_queries = {query_of(e.job_index) for e in rebuilds}
        assert len(paying_queries) == 1
        assert 0 <= paying_queries.pop() - kill_query <= 1
        assert ctx.metrics.recovery_cost_seconds() > 0

        # The cluster healed: the victim's replacement registered and is
        # alive at the end of the run.
        summary = ctx.metrics.recovery_summary()
        assert summary.get("executor_lost", 0) >= 1
        assert summary.get("executor_replaced", 0) >= 1
        assert victim in ctx.alive_executor_ids()
        assert ctx.task_scheduler.busy == {}


# ---------------------------------------------------------------------------
# Processes mode: kernel worker deaths (DESIGN.md §13)
# ---------------------------------------------------------------------------


class TestWorkerProcessKills:
    def test_worker_kills_yield_zero_wrong_answers(self):
        """Seeded SIGKILLs of kernel pool workers mid-request: every query
        must still be answered correctly (the crash maps onto the executor
        death path → blacklist, retry, lineage rebuild), the crashes must
        be observable, and no shared-memory segment may leak."""
        import gc
        import glob

        from repro.indexed.shared_batches import owned_segment_count
        from repro.sql.types import DOUBLE, LONG, Schema

        session = Session(
            config=Config(
                scheduler_mode="processes",
                default_parallelism=4,
                shuffle_partitions=4,
                proc_offload_min_bytes=0,
                proc_offload_min_keys=1,
                small_stage_inline_threshold=0,
                small_stage_inline_rows=0,
                chaos_seed=7,
                chaos_proc_kill_prob=0.25,
                task_retry_backoff=0.001,
                task_retry_backoff_max=0.01,
            )
        )
        schema = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))
        rows = [(i % 300, i % 97, float(i)) for i in range(8000)]
        idf = session.create_dataframe(rows, schema, "edges").create_index("src")
        for _ in range(3):
            assert sorted(idf.to_df().collect_tuples()) == sorted(rows)

        crashes = session.context.registry.counter_total("proc_worker_crashes_total")
        assert crashes > 0, "seeded chaos must kill at least one worker"
        summary = session.context.metrics.recovery_summary()
        assert summary.get("worker_process_crash", 0) == crashes
        assert summary.get("executor_lost", 0) >= 1
        assert session.context.task_scheduler.busy == {}

        del idf, session
        gc.collect()
        assert owned_segment_count() == 0
        assert not glob.glob("/dev/shm/repro-res-*")
