"""Differential oracle suite for range/prefix scans and range joins.

Satellite (a) of the ordered-index PR: 100 seeded random queries —
``BETWEEN``, ``<``/``<=``/``>``/``>=``, ``NOT BETWEEN``, prefix ``LIKE``,
range + residual conjunctions, and an indexed range scan feeding an
equi-join — each checked against an **unindexed full-scan oracle**: a
pure-Python filter over the raw row lists, sharing no code with the
engine's seek path. Runs in all three scheduler modes under seeded chaos
(task kills, executor replacement, memory squeezes), so retries and
lineage rebuilds are exercised on the exact plans under test.

Bound-conflation bugs are the target: the generator draws ``lo``/``hi``
independently (reversed and empty ranges arise naturally) and both
endpoints are drawn from the live key domain, so inclusive-vs-exclusive
mistakes at an occupied boundary always change the answer.
"""

from __future__ import annotations

import random

import pytest

from repro.config import Config
from repro.sql.functions import col
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))
DIM_SCHEMA = Schema.of(("node", LONG), ("label", STRING))
USER_SCHEMA = Schema.of(("name", STRING), ("uid", LONG))

MODES = ("sequential", "threads", "processes")
SEEDS = list(range(100))
KEYS = 100


def normalize(rows):
    return sorted(tuple(r) for r in rows)


def make_data():
    rng = random.Random(2024)
    edges = [
        (rng.randrange(KEYS), rng.randrange(KEYS), round(rng.random(), 4))
        for _ in range(600)
    ]
    dims = [(k, f"label{k % 5}") for k in range(KEYS)]
    users = [(f"user{rng.randrange(80):03d}", i) for i in range(400)]
    return edges, dims, users


def make_session(mode: str) -> Session:
    return Session(
        config=Config(
            default_parallelism=3,
            shuffle_partitions=3,
            scheduler_mode=mode,
            chaos_seed=7,
            chaos_task_failure_prob=0.05,
            chaos_memory_squeeze_prob=0.05,
            executor_replacement=True,
            task_retry_backoff=0.0,
        )
    )


class RangeQueryGenerator:
    """One seeded random range query: SQL/DataFrame build + Python oracle."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def _bound(self):
        return self.rng.randrange(KEYS)

    def build(self, session, edges, dims, users, edges_idf, dims_df):
        rng = self.rng
        kind = rng.randrange(6)
        if kind == 0:  # BETWEEN (inclusive both ends); reversed bounds happen
            lo, hi = self._bound(), self._bound()
            sql = f"SELECT src, dst FROM edges_idx WHERE src BETWEEN {lo} AND {hi}"
            oracle = [(s, d) for s, d, _ in edges if lo <= s <= hi]
            return session.sql(sql).collect_tuples(), oracle
        if kind == 1:  # single comparison, all four operators
            op = rng.choice(["<", "<=", ">", ">="])
            v = self._bound()
            sql = f"SELECT src, dst, w FROM edges_idx WHERE src {op} {v}"
            cmp = {
                "<": lambda s: s < v,
                "<=": lambda s: s <= v,
                ">": lambda s: s > v,
                ">=": lambda s: s >= v,
            }[op]
            oracle = [r for r in edges if cmp(r[0])]
            return session.sql(sql).collect_tuples(), oracle
        if kind == 2:  # NOT BETWEEN (stays a full scan; still must agree)
            lo, hi = sorted((self._bound(), self._bound()))
            sql = f"SELECT src FROM edges_idx WHERE src NOT BETWEEN {lo} AND {hi}"
            oracle = [(s,) for s, _, _ in edges if not (lo <= s <= hi)]
            return session.sql(sql).collect_tuples(), oracle
        if kind == 3:  # range + residual conjunction (residual stays a Filter)
            lo, hi = self._bound(), self._bound()
            c = round(rng.random(), 4)
            sql = (
                "SELECT src, dst, w FROM edges_idx "
                f"WHERE src >= {lo} AND src <= {hi} AND w > {c}"
            )
            oracle = [r for r in edges if lo <= r[0] <= hi and r[2] > c]
            return session.sql(sql).collect_tuples(), oracle
        if kind == 4:  # prefix LIKE on a string-keyed index
            p = f"user{rng.randrange(10)}"
            sql = f"SELECT name, uid FROM users_idx WHERE name LIKE '{p}%'"
            oracle = [r for r in users if r[0].startswith(p)]
            return session.sql(sql).collect_tuples(), oracle
        # kind == 5: indexed range scan feeding an equi-join
        lo, hi = self._bound(), self._bound()
        q = (
            edges_idf.to_df()
            .where(col("src").between(lo, hi))
            .join(dims_df, on=("src", "node"))
            .select("src", "dst", "label")
        )
        dim_label = dict(dims)
        oracle = [(s, d, dim_label[s]) for s, d, _ in edges if lo <= s <= hi]
        return q.collect_tuples(), oracle


@pytest.fixture(scope="module")
def data():
    return make_data()


@pytest.mark.parametrize("mode", MODES)
def test_100_seed_range_differential(data, mode):
    """Acceptance criterion: zero mismatches over 100 seeds per mode."""
    edges, dims, users = data
    session = make_session(mode)
    edges_idf = session.create_dataframe(edges, EDGE_SCHEMA, "edges").create_index(
        "src"
    ).cache_index()
    edges_idf.create_or_replace_temp_view("edges_idx")
    users_idf = session.create_dataframe(users, USER_SCHEMA, "users").create_index(
        "name"
    ).cache_index()
    users_idf.create_or_replace_temp_view("users_idx")
    dims_df = session.create_dataframe(dims, DIM_SCHEMA, "dims").cache()

    mismatches = []
    for seed in SEEDS:
        got, want = RangeQueryGenerator(seed).build(
            session, edges, dims, users, edges_idf, dims_df
        )
        if normalize(got) != normalize(want):
            mismatches.append(seed)
    assert mismatches == [], f"range queries diverged for seeds {mismatches} in {mode} mode"


@pytest.mark.parametrize("mode", MODES)
def test_range_differential_across_mvcc_versions(data, mode):
    """Range scans must honor MVCC: a parent version keeps answering range
    queries from *its* ordered index after child appends, and every child
    answers as if freshly built from the concatenated rows."""
    edges, _, _ = data
    session = make_session(mode)
    rng = random.Random(777)
    base = edges[:400]
    batch = [
        (rng.randrange(KEYS), rng.randrange(KEYS), round(rng.random(), 4))
        for _ in range(60)
    ]
    v0 = session.create_dataframe(base, EDGE_SCHEMA, "edges").create_index("src")
    v1 = v0.append_rows(batch)

    for idf, rows in ((v0, base), (v1, base + batch)):
        for lo, hi in ((10, 30), (55, 55), (90, 10), (0, KEYS)):
            got = idf.to_df().where(col("src").between(lo, hi)).collect_tuples()
            want = [r for r in rows if lo <= r[0] <= hi]
            assert normalize(got) == normalize(want), (
                f"v{idf.version} [{lo}, {hi}] diverged in {mode} mode"
            )
