"""Ordered secondary index unit tests: KeyRange semantics and the
two-level (sorted base + unsorted pending) OrderedIndex structure.

The oracle for every range test is a brute-force filter of the same key
set with :meth:`KeyRange.matches` — the exact predicate the SQL layer
pushes down — so seek logic and bound handling can never drift apart.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.indexed.ordered_index import KeyRange, OrderedIndex


def oracle(keys, krange):
    return sorted(k for k in set(keys) if krange.matches(k))


class TestKeyRange:
    def test_between_is_inclusive_both_ends(self):
        kr = KeyRange(lo=5, hi=10)
        assert kr.matches(5) and kr.matches(10) and kr.matches(7)
        assert not kr.matches(4) and not kr.matches(11)

    def test_exclusive_bounds_never_conflated_with_inclusive(self):
        lt = KeyRange(hi=10, hi_inclusive=False)
        le = KeyRange(hi=10)
        assert le.matches(10) and not lt.matches(10)
        gt = KeyRange(lo=5, lo_inclusive=False)
        ge = KeyRange(lo=5)
        assert ge.matches(5) and not gt.matches(5)

    def test_equal_keys_at_both_bounds(self):
        point = KeyRange(lo=7, hi=7)
        assert point.matches(7) and not point.is_empty()
        assert not point.matches(6) and not point.matches(8)

    def test_equal_bounds_with_either_open_end_is_empty(self):
        assert KeyRange(lo=7, hi=7, lo_inclusive=False).is_empty()
        assert KeyRange(lo=7, hi=7, hi_inclusive=False).is_empty()

    def test_reversed_bounds_are_empty(self):
        assert KeyRange(lo=10, hi=5).is_empty()
        assert not KeyRange(lo=5, hi=10).is_empty()

    def test_prefix(self):
        kr = KeyRange.prefix_of("user01")
        assert kr.matches("user01") and kr.matches("user0199")
        assert not kr.matches("user02") and not kr.matches("user0")
        assert not kr.matches(42)  # non-strings never match a prefix

    def test_intersect_picks_tighter_bounds(self):
        merged = KeyRange(lo=0, hi=100).intersect(KeyRange(lo=10, hi=50, hi_inclusive=False))
        assert merged.lo == 10 and merged.hi == 50 and not merged.hi_inclusive
        # Same bound: exclusive wins (it is the tighter constraint).
        merged = KeyRange(lo=10).intersect(KeyRange(lo=10, lo_inclusive=False))
        assert merged.lo == 10 and not merged.lo_inclusive

    def test_intersect_prefix_with_incompatible_range_is_none(self):
        assert KeyRange.prefix_of("abc").intersect(KeyRange(lo=1, hi=9)) is None

    def test_intersect_prefix_with_extending_prefix(self):
        merged = KeyRange.prefix_of("ab").intersect(KeyRange.prefix_of("abc"))
        assert merged is not None and merged.prefix == "abc"
        assert KeyRange.prefix_of("ab").intersect(KeyRange.prefix_of("xy")) is None


class TestOrderedIndex:
    def test_add_dedups_and_orders(self):
        idx = OrderedIndex()
        for k in [5, 3, 5, 9, 3, 1, 9, 9]:
            idx.add(k)
        assert list(idx.iter_keys()) == [1, 3, 5, 9]
        assert len(idx) == 4
        assert 5 in idx and 4 not in idx
        assert idx.min_key() == 1 and idx.max_key() == 9

    def test_compaction_threshold_merges_pending_into_base(self):
        idx = OrderedIndex(compact_threshold=8)
        keys = list(range(100))
        random.Random(0).shuffle(keys)
        for k in keys:
            idx.add(k)
        assert list(idx.iter_keys()) == list(range(100))
        # Pending stays bounded by the threshold.
        assert len(idx._pending) <= 8

    @pytest.mark.parametrize("threshold", [1, 2, 7, 512])
    def test_range_keys_matches_oracle_across_thresholds(self, threshold):
        rng = random.Random(41)
        idx = OrderedIndex(compact_threshold=threshold)
        keys = [rng.randrange(0, 200) for _ in range(300)]
        for k in keys:
            idx.add(k)
        for _ in range(200):
            a, b = rng.randrange(0, 200), rng.randrange(0, 200)
            kr = KeyRange(
                lo=a,
                hi=b,
                lo_inclusive=rng.random() < 0.5,
                hi_inclusive=rng.random() < 0.5,
            )
            assert idx.range_keys(kr) == oracle(keys, kr), kr.describe()

    def test_range_keys_open_ended_and_empty(self):
        idx = OrderedIndex()
        for k in [2, 4, 6, 8]:
            idx.add(k)
        assert idx.range_keys(KeyRange(lo=5)) == [6, 8]
        assert idx.range_keys(KeyRange(hi=5)) == [2, 4]
        assert idx.range_keys(KeyRange()) == [2, 4, 6, 8]
        assert idx.range_keys(KeyRange(lo=8, hi=2)) == []  # reversed
        assert idx.range_keys(KeyRange(lo=3, hi=3)) == []  # empty point

    def test_prefix_range_keys(self):
        idx = OrderedIndex()
        keys = ["apple", "apricot", "banana", "app", "application", "ap"]
        for k in keys:
            idx.add(k)
        kr = KeyRange.prefix_of("app")
        assert idx.range_keys(kr) == ["app", "apple", "application"]
        assert idx.range_keys(KeyRange.prefix_of("z")) == []

    def test_snapshot_isolated_from_later_adds(self):
        idx = OrderedIndex(compact_threshold=4)
        for k in [10, 20, 30]:
            idx.add(k)
        snap = idx.snapshot()
        for k in [5, 15, 25, 35, 45, 55]:  # crosses a compaction
            idx.add(k)
        assert list(snap.iter_keys()) == [10, 20, 30]
        assert list(idx.iter_keys()) == [5, 10, 15, 20, 25, 30, 35, 45, 55]

    def test_copy_is_fully_independent(self):
        idx = OrderedIndex()
        idx.add(1)
        clone = idx.copy()
        clone.add(2)
        idx.add(3)
        assert list(idx.iter_keys()) == [1, 3]
        assert list(clone.iter_keys()) == [1, 2]

    def test_concurrent_readers_during_adds_and_compactions(self):
        """Readers may see an in-flight key or not, but never lose a key
        that was added before their scan started, and never crash."""
        idx = OrderedIndex(compact_threshold=16)
        for k in range(0, 1000, 2):
            idx.add(k)
        stop = threading.Event()
        errors = []

        def reader():
            kr = KeyRange(lo=100, hi=299)
            baseline = [k for k in range(100, 300, 2)]
            while not stop.is_set():
                got = idx.range_keys(kr)
                if not set(baseline).issubset(got):
                    errors.append((baseline, got))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for k in range(1, 1000, 2):  # odd keys interleave everywhere
            idx.add(k)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert list(idx.iter_keys()) == list(range(1000))
