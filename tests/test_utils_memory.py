"""deep_sizeof: cycle safety, shared-structure counting, snapshot deltas."""

import numpy as np

from repro.utils.memory import deep_sizeof, reachable_ids


class TestDeepSizeof:
    def test_scalar(self):
        assert deep_sizeof(42) > 0

    def test_list_bigger_than_element(self):
        assert deep_sizeof([1, 2, 3]) > deep_sizeof(1)

    def test_cycle_terminates(self):
        a: list = [1]
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_shared_object_counted_once(self):
        shared = "x" * 10_000
        single = deep_sizeof([shared])
        double = deep_sizeof([shared, shared])
        # The second reference adds only pointer overhead, not 10KB.
        assert double < single + 1000

    def test_dict_counts_keys_and_values(self):
        d = {"k" * 100: "v" * 100}
        assert deep_sizeof(d) > 200

    def test_numpy_array(self):
        arr = np.zeros(10_000, dtype=np.int64)
        assert deep_sizeof(arr) >= arr.nbytes

    def test_slots_objects(self):
        class Slotted:
            __slots__ = ("a", "b")

            def __init__(self):
                self.a = "x" * 1000
                self.b = 1

        assert deep_sizeof(Slotted()) > 1000

    def test_seen_parameter_measures_delta(self):
        base = ["x" * 5000]
        seen = reachable_ids(base)
        extended = [base, "y" * 100]
        delta = deep_sizeof(extended, seen=seen)
        # The 5KB string is already seen: only the new parts count.
        assert delta < 1000


class TestReachableIds:
    def test_contains_all_parts(self):
        inner = [1, 2]
        outer = {"a": inner}
        ids = reachable_ids(outer)
        assert id(outer) in ids
        assert id(inner) in ids
