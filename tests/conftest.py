"""Shared fixtures: small sessions/clusters sized for fast tests."""

from __future__ import annotations

import random

import pytest

from repro.cluster.topology import private_cluster
from repro.config import Config
from repro.engine.context import EngineContext
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema


@pytest.fixture()
def config() -> Config:
    return Config(
        default_parallelism=4,
        shuffle_partitions=4,
        row_batch_size=4096,
    )


@pytest.fixture()
def context(config: Config) -> EngineContext:
    return EngineContext(config=config, topology=private_cluster(num_machines=2))


@pytest.fixture()
def session(context: EngineContext) -> Session:
    return Session(context=context)


EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("weight", DOUBLE))
USER_SCHEMA = Schema.of(("uid", LONG), ("name", STRING), ("score", DOUBLE))


def make_edges(n: int = 500, keys: int = 50, seed: int = 3) -> list[tuple]:
    rng = random.Random(seed)
    return [
        (rng.randrange(keys), rng.randrange(keys), round(rng.random(), 6)) for _ in range(n)
    ]


def make_users(n: int = 100, seed: int = 5) -> list[tuple]:
    rng = random.Random(seed)
    return [(i, f"user{i % 17}", round(rng.random() * 100, 3)) for i in range(n)]


@pytest.fixture()
def edges() -> list[tuple]:
    return make_edges()


@pytest.fixture()
def users() -> list[tuple]:
    return make_users()
