"""Sharded serve tier: routing, replication, failover, hedging, chaos.

The tier-wide contract (DESIGN.md §14), enforced here property-style: the
router may *reject* (retryably) and may *degrade* (partial rows, flagged,
only when every replica of a partition is dead) — but it never returns a
wrong answer, under any seed, with shards dying mid-stream.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import Config
from repro.engine.context import EngineContext
from repro.serve import (
    PartitionNotOwned,
    QueryServer,
    RouterConfig,
    RoutingTable,
    ServeConfig,
    ServeRejected,
    ShardConfig,
    ShardDown,
    ShardRouter,
    ShardServer,
    SpaceSaving,
)
from repro.sql.session import Session

from .conftest import USER_SCHEMA, make_users


def make_sharded(
    num_shards: int = 4,
    router: RouterConfig | None = None,
    config: Config | None = None,
    n_users: int = 120,
):
    config = config or Config(
        default_parallelism=4, shuffle_partitions=4, row_batch_size=4096
    )
    session = Session(context=EngineContext(config=config))
    df = session.create_dataframe(make_users(n_users), USER_SCHEMA, name="users")
    idf = df.create_index("uid")
    r = ShardRouter(session, num_shards, config=router or RouterConfig())
    r.publish("users", idf)
    return session, idf, r


# -- the popularity sketch -------------------------------------------------------------


class TestSpaceSaving:
    def test_exact_below_capacity(self):
        s = SpaceSaving(capacity=8)
        for _ in range(5):
            s.offer("a")
        s.offer("b")
        assert s.count("a") == 5
        assert s.guaranteed_count("a") == 5
        assert s.count("z") == 0
        assert s.top(1) == [("a", 5)]

    def test_heavy_hitter_survives_churn(self):
        s = SpaceSaving(capacity=4)
        for i in range(400):
            s.offer("hot")
            s.offer(f"cold{i}")  # endless one-hit wonders force evictions
        assert s.is_hot("hot", min_count=300)
        # SpaceSaving guarantee: any key with true count > total/capacity
        # is monitored; "hot" (400 of 800) certainly is.
        assert s.count("hot") >= 400
        assert len(s) <= 4

    def test_overestimate_never_underestimate(self):
        s = SpaceSaving(capacity=2)
        s.offer("a"), s.offer("b"), s.offer("c")  # c evicts the min
        assert s.count("c") >= 1  # estimate includes inherited error
        assert s.guaranteed_count("c") <= s.count("c")


# -- routing table ---------------------------------------------------------------------


class TestRoutingTable:
    def test_primary_and_replica_placement(self):
        t = RoutingTable(num_partitions=6, num_shards=3, replication_factor=2)
        assert t.replicas(0) == [0, 1]
        assert t.replicas(4) == [1, 2]
        assert t.replicas(5) == [2, 0]
        assert sorted(t.splits_owned_by(0)) == [0, 2, 3, 5]

    def test_replication_factor_clamped_to_shards(self):
        t = RoutingTable(num_partitions=2, num_shards=2, replication_factor=5)
        assert t.replication_factor == 2
        assert sorted(t.replicas(0)) == [0, 1]

    def test_promote_grows_round_robin_and_reports_added(self):
        t = RoutingTable(num_partitions=4, num_shards=4, replication_factor=1)
        assert t.replicas(1) == [1]
        added = t.promote(1, 3)
        assert added == [2, 3]
        assert t.replicas(1) == [1, 2, 3]
        assert t.promote(1, 3) == []  # idempotent

    def test_scan_assignment_balances_and_reports_missing(self):
        t = RoutingTable(num_partitions=8, num_shards=4, replication_factor=2)
        assignment, missing = t.scan_assignment(range(8), live={0, 1, 2, 3})
        assert missing == []
        covered = sorted(s for splits in assignment.values() for s in splits)
        assert covered == list(range(8))  # each split exactly once
        # Kill everything owning split 0 ({0, 1}): it has no live replica.
        assignment, missing = t.scan_assignment(range(8), live={2, 3})
        assert 0 in missing
        covered = sorted(s for splits in assignment.values() for s in splits)
        assert 0 not in covered


# -- a single shard --------------------------------------------------------------------


class TestShardServer:
    def make_shard(self, **cfg):
        config = Config(default_parallelism=4, shuffle_partitions=4, row_batch_size=4096)
        session = Session(context=EngineContext(config=config))
        df = session.create_dataframe(make_users(60), USER_SCHEMA, name="users")
        idf = df.create_index("uid")
        from repro.serve.snapshot import PinnedSnapshot

        pin = PinnedSnapshot.pin(idf)
        shard = ShardServer(0, session.context, ShardConfig(**cfg))
        owned = {0: pin.partitions[0], 2: pin.partitions[2]}
        shard.install("users", pin.version, idf.partitioner, owned)
        return session, idf, pin, shard

    def test_lookup_owned_key_and_reject_unowned(self):
        session, idf, pin, shard = self.make_shard()
        owned_key = next(
            k for k in range(60) if idf.partitioner.partition(k) in (0, 2)
        )
        unowned_key = next(
            k for k in range(60) if idf.partitioner.partition(k) not in (0, 2)
        )
        assert shard.lookup("users", owned_key) == pin.lookup(owned_key)
        with pytest.raises(PartitionNotOwned):
            shard.lookup("users", unowned_key)

    def test_scan_only_requested_splits(self):
        session, idf, pin, shard = self.make_shard()
        rows = shard.scan("users", [0])
        assert sorted(rows) == sorted(pin.partitions[0].scan_rows())
        with pytest.raises(PartitionNotOwned):
            shard.scan("users", [0, 1])  # 1 is not installed

    def test_kill_raises_shard_down_and_restore_is_empty(self):
        session, idf, pin, shard = self.make_shard()
        shard.kill()
        assert not shard.alive
        with pytest.raises(ShardDown):
            shard.lookup("users", 0)
        with pytest.raises(ShardDown):
            shard.heartbeat()
        shard.restore()
        assert shard.alive
        # A restart does not resurrect state: the router must re-install.
        with pytest.raises(PartitionNotOwned):
            shard.lookup("users", 0)

    def test_overload_sheds_retryably(self):
        session, idf, pin, shard = self.make_shard(max_inflight=0)
        with pytest.raises(ServeRejected) as exc_info:
            shard.lookup("users", 0)
        assert exc_info.value.reason == "shard_overloaded"
        assert exc_info.value.retryable


# -- the router ------------------------------------------------------------------------


class TestShardRouter:
    def test_point_in_scan_general_match_session(self):
        session, _, router = make_sharded()
        with router:
            cases = [
                ("SELECT * FROM users WHERE uid = 17", "point"),
                ("SELECT name, score FROM users WHERE uid IN (3, 4, 5)", "point"),
                ("SELECT uid FROM users WHERE score > 50", "scan"),
                ("SELECT name, SUM(score) AS s FROM users GROUP BY name", "general"),
            ]
            for text, path in cases:
                result = router.query(text)
                assert result.path == path, text
                assert sorted(result.rows) == sorted(
                    session.sql(text).collect_tuples()
                ), text
                assert not result.degraded

    def test_single_key_routes_to_one_shard_only(self):
        session, idf, router = make_sharded()
        with router:
            router.query("SELECT * FROM users WHERE uid = 9")  # warm template
            reg = session.context.registry
            before = reg.counter_by_label("serve_shard_requests_total", "shard")
            router.query("SELECT * FROM users WHERE uid = 9")
            after = reg.counter_by_label("serve_shard_requests_total", "shard")
            touched = [s for s in after if after[s] > before.get(s, 0)]
            assert len(touched) == 1

    def test_failover_mid_stream_no_client_visible_error(self):
        session, idf, router = make_sharded()
        with router:
            expected = {
                uid: sorted(session.sql(
                    f"SELECT * FROM users WHERE uid = {uid}"
                ).collect_tuples())
                for uid in range(40)
            }
            for uid in range(20):
                assert sorted(
                    router.query("SELECT * FROM users WHERE uid = ?", params=[uid]).rows
                ) == expected[uid]
            router.kill_shard(1)
            # rf=2: every key still has a live replica — zero degraded,
            # zero wrong, zero client-visible errors.
            for uid in range(40):
                result = router.query(
                    "SELECT * FROM users WHERE uid = ?", params=[uid]
                )
                assert not result.degraded
                assert sorted(result.rows) == expected[uid]
            assert router.shard_states()[1] == "dead"

    def test_degraded_only_when_all_replicas_dead(self):
        session, idf, router = make_sharded(
            num_shards=3,
            router=RouterConfig(replication_factor=1, auto_repair=False),
        )
        with router:
            dead = 0
            router.kill_shard(dead)
            table = router.routing_table("users")
            lost = {split for split, owners in table.items() if owners == [dead]}
            assert lost, "rf=1 kill must orphan some splits"
            for uid in range(60):
                split = idf.partitioner.partition(uid)
                result = router.query(
                    "SELECT * FROM users WHERE uid = ?", params=[uid]
                )
                if split in lost:
                    assert result.degraded
                    assert result.rows == []
                    assert split in result.missing_partitions
                else:
                    assert not result.degraded
            scan = router.query("SELECT uid FROM users WHERE score >= 0")
            assert scan.degraded
            assert set(scan.missing_partitions) == lost
            served = {uid for (uid,) in scan.rows}
            assert all(idf.partitioner.partition(u) not in lost for u in served)

    def test_auto_repair_restores_replication_factor(self):
        session, idf, router = make_sharded(num_shards=4)
        with router:
            router.kill_shard(2)
            live = set(router.live_shards())
            table = router.routing_table("users")
            for split, owners in table.items():
                assert sum(1 for s in owners if s in live) >= 2, (split, owners)
            # And the repaired copies actually serve.
            for uid in range(30):
                result = router.query(
                    "SELECT name FROM users WHERE uid = ?", params=[uid]
                )
                assert not result.degraded

    def test_recover_shard_rejoins_and_serves(self):
        session, idf, router = make_sharded()
        with router:
            router.kill_shard(0)
            router.recover_shard(0)
            assert router.shard_states()[0] == "alive"
            assert 0 in router.live_shards()
            snap = router.shards[0].snapshot("users")
            assert snap.version == idf.version
            assert sorted(snap.parts) == sorted(
                router.pinned("users").table.splits_owned_by(0)
            )

    def test_heartbeat_state_machine_alive_suspect_dead(self):
        session, idf, router = make_sharded(
            router=RouterConfig(heartbeat_misses_to_dead=2)
        )
        with router:
            router.shards[3]._alive = False  # fail heartbeats without declaring
            assert router.check_health()[3] == "suspect"
            assert router.check_health()[3] == "dead"
            # Dead shards stay dead until explicitly recovered.
            assert router.check_health()[3] == "dead"
            router.recover_shard(3)
            assert router.check_health()[3] == "alive"

    def test_hot_key_cache_and_promotion(self):
        session, idf, router = make_sharded(
            router=RouterConfig(
                hot_key_min_count=4, hot_promotion_min_count=8, hot_cache_capacity=16
            )
        )
        with router:
            for _ in range(30):
                r = router.query("SELECT name FROM users WHERE uid = ?", params=[11])
            assert r.from_hot_cache
            reg = session.context.registry
            assert reg.counter_value("serve_hot_cache_hits_total") > 0
            split = idf.partitioner.partition(11)
            assert len(router.routing_table("users")[split]) == len(router.shards)
            assert reg.counter_value("serve_hot_promotions_total") >= 1

    def test_hot_cache_invalidated_by_republish(self):
        session, idf, router = make_sharded(
            router=RouterConfig(hot_key_min_count=2, hot_cache_capacity=16)
        )
        with router:
            for _ in range(5):
                router.query("SELECT score FROM users WHERE uid = ?", params=[7])
            child = idf.append_rows([(7, "fresh", 123.456)])
            router.publish("users", child)
            rows = router.query(
                "SELECT score FROM users WHERE uid = ?", params=[7]
            ).rows
            assert (123.456,) in rows  # stale cached version cannot answer

    def test_hedged_retry_beats_straggler_within_budget(self):
        session, idf, router = make_sharded(
            router=RouterConfig(hedge_delay=0.02, hedge_budget_fraction=1.0)
        )
        with router:
            uid = 5
            split = idf.partitioner.partition(uid)
            expected = sorted(
                session.sql(f"SELECT * FROM users WHERE uid = {uid}").collect_tuples()
            )
            reg = session.context.registry
            hits = 0
            for _ in range(8):
                # Stall whichever replica the rotation will try first.
                for owner in router.pinned("users").table.replicas(split):
                    session.context.faults.delay_shard_once(owner, 0.2)
                result = router.query(
                    "SELECT * FROM users WHERE uid = ?", params=[uid]
                )
                assert sorted(result.rows) == expected
                hits += 1 if result.hedged else 0
                session.context.faults.reset()
                session.context.faults.configure(seed=1)
            assert hits > 0
            assert reg.counter_value("serve_hedged_requests_total") >= hits

    def test_publish_barrier_keeps_versions_consistent(self):
        session, idf, router = make_sharded(n_users=80)
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                try:
                    result = router.query("SELECT uid FROM users WHERE score >= 0")
                except ServeRejected:
                    continue
                counts = len(result.rows)
                # Every publish appends exactly 1 row: any answer must be
                # one of the published cardinalities, never in between
                # versions (the barrier guarantees it).
                if counts not in allowed:
                    torn.append(counts)

        allowed = {80}
        t = threading.Thread(target=reader)
        t.start()
        try:
            current = idf
            for i in range(5):
                current = current.append_rows([(1000 + i, f"new{i}", 1.0)])
                allowed.add(80 + i + 1)
                router.publish("users", current)
        finally:
            stop.set()
            t.join(timeout=10.0)
        router.shutdown()
        assert torn == []


# -- the 200-seed property test --------------------------------------------------------


class TestShardedChaosProperty:
    """Satellite: across 200 seeds, the sharded+replicated tier answers
    identically to a single QueryServer — including with chaos killing
    shards mid-workload. Zero wrong answers; ``degraded`` may appear only
    when every replica of a partition is dead."""

    N_USERS = 60
    QUERIES = [
        ("SELECT * FROM users WHERE uid = ?", "point"),
        ("SELECT name, score FROM users WHERE uid IN (2, 19, 44)", "point"),
        ("SELECT uid, name FROM users WHERE score > 35", "scan"),
    ]

    @pytest.fixture(scope="class")
    def shared(self):
        config = Config(
            default_parallelism=4, shuffle_partitions=4, row_batch_size=4096
        )
        session = Session(context=EngineContext(config=config))
        df = session.create_dataframe(
            make_users(self.N_USERS), USER_SCHEMA, name="users"
        )
        idf = df.create_index("uid")
        # Reference answers from the single-server tier (itself verified
        # against the general pipeline in test_serve.py).
        server = QueryServer(session, ServeConfig(num_workers=1))
        server.publish("users", idf)
        expected: dict[tuple, list] = {}
        for uid in range(self.N_USERS + 5):
            expected[("point?", uid)] = sorted(
                server.query(self.QUERIES[0][0], params=[uid]).rows
            )
        for text, _ in self.QUERIES[1:]:
            expected[(text, None)] = sorted(server.query(text).rows)
        server.shutdown()
        return session, idf, expected

    def test_200_seeds_zero_wrong_answers(self, shared):
        session, idf, expected = shared
        faults = session.context.faults
        wrong: list[tuple] = []
        degraded_seen = 0
        kills_seen = 0
        for seed in range(200):
            faults.reset()
            faults.configure(seed=seed, shard_kill_prob=0.06)
            router = ShardRouter(
                session,
                num_shards=4,
                config=RouterConfig(replication_factor=2, hot_key_min_count=6),
            )
            router.publish("users", idf)
            try:
                for i in range(24):
                    uid = (seed * 7 + i * 5) % (self.N_USERS + 5)
                    text, _ = self.QUERIES[i % len(self.QUERIES)]
                    params = [uid] if "?" in text else None
                    key = ("point?", uid) if params else (text, None)
                    try:
                        result = router.query(text, params=params)
                    except ServeRejected as exc:
                        assert exc.retryable, (seed, i, exc.reason)
                        continue
                    if result.degraded:
                        degraded_seen += 1
                        live = set(router.live_shards())
                        table = router.pinned("users").table
                        for split in result.missing_partitions:
                            owners = table.replicas(split)
                            assert not (set(owners) & live), (
                                f"seed {seed}: split {split} flagged missing "
                                f"but has live replicas {owners} ∩ {live}"
                            )
                        continue
                    if sorted(result.rows) != expected[key]:
                        wrong.append((seed, i, text, uid))
                dead = [s for s, h in router.shard_states().items() if h == "dead"]
                kills_seen += len(dead)
            finally:
                router.shutdown()
        faults.reset()
        assert wrong == [], f"wrong answers under chaos: {wrong[:5]}"
        assert kills_seen > 0, "chaos never killed a shard across 200 seeds"
        # rf=2 on 4 shards: most kills are absorbed; degradation is the
        # exception (both replicas dead), not the rule.
        assert degraded_seen < kills_seen * 24
