"""DAG/task scheduling: stages, amortization, locality, failure recovery."""

import pytest

from repro.config import Config
from repro.engine.context import EngineContext
from repro.engine.dag import JobFailedError
from repro.engine.partitioner import HashPartitioner
from repro.engine.scheduler import TaskFailure
from repro.engine.shuffle import estimate_size


@pytest.fixture()
def ctx() -> EngineContext:
    return EngineContext(config=Config(default_parallelism=4, shuffle_partitions=4))


class TestStageAmortization:
    def test_shuffle_computed_once_across_jobs(self, ctx):
        """The Fig. 1 amortization mechanism: a shuffle's map stage is
        skipped once its outputs exist — repeated queries over a shuffled
        (indexed) RDD pay the shuffle only once."""
        map_calls = []
        src = ctx.parallelize([(i % 5, i) for i in range(50)], 4).map(
            lambda kv: map_calls.append(kv) or kv
        )
        shuffled = src.partition_by(HashPartitioner(4))
        shuffled.collect()
        first = len(map_calls)
        shuffled.collect()
        shuffled.count()
        assert len(map_calls) == first  # map stage not re-run

    def test_chained_shuffles(self, ctx):
        rdd = (
            ctx.parallelize([(i % 7, 1) for i in range(70)], 4)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[1], kv[0]))
            .reduce_by_key(lambda a, b: a + b)
        )
        got = dict(rdd.collect())
        assert got == {10: sum(range(7))}


class TestLocality:
    def test_cached_partition_prefers_its_executor(self, ctx):
        rdd = ctx.parallelize(range(20), 2).cache()
        rdd.collect()
        locs0 = rdd.preferred_locations(0)
        rdd.collect()
        placements = dict(
            (p, (e, lvl)) for (e, lvl), p in zip(ctx.task_scheduler.last_placements, [0, 1])
        )
        e, lvl = placements[0]
        assert lvl == "PROCESS_LOCAL"
        assert e in locs0

    def test_falls_to_any_when_preferred_dead(self, ctx):
        rdd = ctx.parallelize(range(20), 2).cache()
        rdd.collect()
        for executor in {e for e in rdd.preferred_locations(0) + rdd.preferred_locations(1)}:
            ctx.kill_executor(executor)
        assert sorted(rdd.collect()) == list(range(20))


class TestFailureRecovery:
    def test_map_output_loss_triggers_stage_retry(self, ctx):
        shuffled = ctx.parallelize([(i % 4, i) for i in range(40)], 4).partition_by(
            HashPartitioner(4)
        )
        assert len(shuffled.collect()) == 40
        # Kill every executor that produced a map output: all outputs lost.
        victims = list(ctx.alive_executor_ids())[:-1]
        for v in victims:
            ctx.kill_executor(v)
        assert len(shuffled.collect()) == 40  # recomputed via lineage

    def test_all_executors_dead_raises(self, ctx):
        for e in list(ctx.alive_executor_ids()):
            ctx.kill_executor(e)
        with pytest.raises(RuntimeError):
            ctx.parallelize([1], 1).collect()

    def test_flaky_task_retried(self, ctx):
        attempts = {"n": 0}

        def flaky(x):
            if x == 7 and attempts["n"] < 2:
                attempts["n"] += 1
                raise OSError("transient")
            return x

        got = ctx.parallelize(range(10), 2).map(flaky).collect()
        assert got == list(range(10))
        assert attempts["n"] == 2

    def test_permanently_failing_task_fails_job(self, ctx):
        def bad(x):
            raise ValueError("always broken")

        with pytest.raises(TaskFailure):
            ctx.parallelize([1], 1).map(bad).collect()

    def test_restart_executor(self, ctx):
        victim = ctx.alive_executor_ids()[0]
        ctx.kill_executor(victim)
        assert victim not in ctx.alive_executor_ids()
        ctx.restart_executor(victim)
        assert victim in ctx.alive_executor_ids()


class TestFaultInjection:
    def test_scheduled_kill_fires_at_job_boundary(self, ctx):
        rdd = ctx.parallelize(range(10), 2).cache()
        rdd.collect()
        victim = ctx.alive_executor_ids()[0]
        ctx.faults.fail_executor_at_job(victim, ctx.job_index + 1)
        rdd.collect()  # the job that triggers the kill still succeeds
        assert victim not in ctx.alive_executor_ids()
        assert sorted(rdd.collect()) == list(range(10))


class TestShuffleAccounting:
    def test_estimate_size_scales_with_records(self):
        small = estimate_size([(1, 2)] * 10)
        large = estimate_size([(1, 2)] * 1000)
        assert large > small * 50

    def test_estimate_size_empty(self):
        assert estimate_size([]) == 0

    def test_shuffle_bytes_recorded(self, ctx):
        shuffled = ctx.parallelize([(i, "x" * 50) for i in range(200)], 4).partition_by(
            HashPartitioner(4)
        )
        shuffled.collect()
        s = ctx.metrics.summary()
        assert s["shuffle_bytes_written"] > 0

    def test_remote_reads_recorded_for_multi_machine(self, ctx):
        shuffled = ctx.parallelize([(i, i) for i in range(100)], 4).partition_by(
            HashPartitioner(4)
        )
        shuffled.collect()
        s = ctx.metrics.summary()
        # With >1 machines in the default fixture, some reads are remote.
        assert s["shuffle_bytes_read_remote"] > 0
