"""Catalyst integration: the right physical operators get chosen, with
fallback to vanilla execution when the index cannot help (Fig. 2)."""

import random

import pytest

from repro.config import Config
from repro.indexed.operators import IndexedJoinExec, IndexedLookupExec, IndexedScanExec
from repro.indexed.rules import extract_lookup_keys
from repro.sql.functions import col, count, lit
from repro.sql.physical import FilterExec
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))


@pytest.fixture()
def session() -> Session:
    return Session(config=Config(default_parallelism=4, shuffle_partitions=4))


def make_rows(n=600, keys=60, seed=4):
    rng = random.Random(seed)
    return [(rng.randrange(keys), rng.randrange(keys), round(rng.random(), 4)) for _ in range(n)]


@pytest.fixture()
def setup(session):
    rows = make_rows()
    df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
    idf = df.create_index("src").cache_index()
    idf.create_or_replace_temp_view("edges_idx")
    return session, rows, idf


class TestExtractLookupKeys:
    def test_simple_equality(self):
        keys, residual = extract_lookup_keys(col("src") == 5, "src")
        assert keys == [5]
        assert residual is None

    def test_reversed_equality(self):
        keys, _ = extract_lookup_keys(lit(5) == col("src"), "src")
        assert keys == [5]

    def test_in_list(self):
        keys, residual = extract_lookup_keys(col("src").isin(3, 1, 2), "src")
        assert keys == [1, 2, 3]
        assert residual is None

    def test_equality_with_residual(self):
        keys, residual = extract_lookup_keys((col("src") == 5) & (col("w") > 0.5), "src")
        assert keys == [5]
        assert residual is not None

    def test_conflicting_equalities_empty(self):
        keys, _ = extract_lookup_keys((col("src") == 5) & (col("src") == 6), "src")
        assert keys == []

    def test_intersecting_in_and_eq(self):
        keys, _ = extract_lookup_keys((col("src").isin(1, 2, 3)) & (col("src") == 2), "src")
        assert keys == [2]

    def test_no_key_constraint(self):
        keys, residual = extract_lookup_keys(col("w") > 0.5, "src")
        assert keys is None and residual is None

    def test_non_key_equality_not_claimed(self):
        keys, _ = extract_lookup_keys(col("dst") == 5, "src")
        assert keys is None

    def test_range_on_key_not_claimed(self):
        keys, _ = extract_lookup_keys(col("src") > 5, "src")
        assert keys is None


class TestPlanSelection:
    def _plan(self, session, df):
        return session.plan_physical(df.plan)

    def test_point_query_uses_lookup(self, setup):
        session, _, idf = setup
        p = self._plan(session, session.sql("SELECT * FROM edges_idx WHERE src = 5"))
        assert isinstance(p, IndexedLookupExec)

    def test_in_query_uses_lookup(self, setup):
        session, _, _ = setup
        p = self._plan(session, session.sql("SELECT * FROM edges_idx WHERE src IN (1, 2)"))
        assert isinstance(p, IndexedLookupExec)

    def test_lookup_with_residual_filter(self, setup):
        session, _, _ = setup
        p = self._plan(
            session, session.sql("SELECT * FROM edges_idx WHERE src = 5 AND w > 0.5")
        )
        assert isinstance(p, FilterExec)
        assert isinstance(p.child, IndexedLookupExec)

    def test_non_equality_falls_back_to_scan(self, setup):
        session, _, _ = setup
        p = self._plan(session, session.sql("SELECT * FROM edges_idx WHERE w > 0.5"))
        tree = p.tree_string()
        assert "IndexedScan" in tree
        assert "IndexedLookup" not in tree

    def test_bare_scan(self, setup):
        session, _, _ = setup
        p = self._plan(session, session.sql("SELECT * FROM edges_idx"))
        assert isinstance(p, IndexedScanExec)

    def test_join_on_index_key_uses_indexed_join(self, setup):
        session, _, idf = setup
        probe = session.create_dataframe([(1,), (2,)], Schema.of(("k", LONG)), "p")
        plan = self._plan(session, probe.join(idf.to_df(), on=("k", "src")))
        assert isinstance(plan, IndexedJoinExec)
        assert plan.indexed_on_left is False

    def test_join_with_index_on_left(self, setup):
        session, _, idf = setup
        probe = session.create_dataframe([(1,), (2,)], Schema.of(("k", LONG)), "p")
        plan = self._plan(session, idf.to_df().join(probe, on=("src", "k")))
        assert isinstance(plan, IndexedJoinExec)
        assert plan.indexed_on_left is True

    def test_join_on_non_key_column_falls_back(self, setup):
        session, _, idf = setup
        probe = session.create_dataframe([(1,)], Schema.of(("k", LONG)), "p")
        plan = self._plan(session, probe.join(idf.to_df(), on=("k", "dst")))
        assert not isinstance(plan, IndexedJoinExec)
        assert "IndexedScan" in plan.tree_string()  # index data still scanned

    def test_non_indexed_query_untouched(self, setup):
        session, rows, _ = setup
        plain = session.create_dataframe(rows, EDGE_SCHEMA, "plain").cache()
        plan = self._plan(session, plain.where(col("src") == 5))
        assert "Indexed" not in plan.tree_string()


class TestResultEquivalence:
    """The indexed plans must return exactly what vanilla plans return."""

    def test_point_query_results(self, setup):
        session, rows, _ = setup
        for key in (0, 5, 59, 1234):
            got = session.sql(f"SELECT * FROM edges_idx WHERE src = {key}").collect_tuples()
            assert sorted(got) == sorted(r for r in rows if r[0] == key)

    def test_lookup_with_projection(self, setup):
        session, rows, _ = setup
        got = session.sql("SELECT dst FROM edges_idx WHERE src = 3").collect_tuples()
        assert sorted(got) == sorted((r[1],) for r in rows if r[0] == 3)

    def test_join_results_match_vanilla(self, setup):
        session, rows, idf = setup
        probe_keys = [(k,) for k in range(0, 60, 7)]
        probe = session.create_dataframe(probe_keys, Schema.of(("k", LONG)), "probe")
        indexed = probe.join(idf.to_df(), on=("k", "src")).collect_tuples()
        vanilla_df = session.create_dataframe(rows, EDGE_SCHEMA, "vanilla").cache()
        vanilla = probe.join(vanilla_df, on=("k", "src")).collect_tuples()
        assert sorted(indexed) == sorted(vanilla)

    def test_join_with_residual(self, setup):
        session, rows, idf = setup
        probe = session.create_dataframe([(k,) for k in range(60)], Schema.of(("k", LONG)), "p")
        joined = probe.join(idf.to_df(), on=(col("k") == col("src")))
        filtered = joined.where(col("w") > 0.5)
        got = filtered.collect_tuples()
        want = [(r[0],) + r for r in rows if r[2] > 0.5]
        assert sorted(got) == sorted(want)

    def test_aggregate_over_indexed_view(self, setup):
        session, rows, _ = setup
        got = session.sql(
            "SELECT src, count(*) AS n FROM edges_idx GROUP BY src ORDER BY src"
        ).collect_tuples()
        from collections import Counter

        want = sorted(Counter(r[0] for r in rows).items())
        assert got == want

    def test_self_join_on_index(self, setup):
        """Lookup feeding an indexed self-join (the SQ7 pattern)."""
        session, rows, _ = setup
        got = session.sql(
            "SELECT dst_r AS x FROM edges_idx a JOIN edges_idx b "
            "ON a.dst = b.src WHERE a.src = 3"
        ).collect_tuples()
        firsts = [r[1] for r in rows if r[0] == 3]
        want = sorted((r[1],) for r in rows if r[0] in firsts)
        # one output per (a-edge, b-edge) pair:
        want = sorted((r[1],) for f in firsts for r in rows if r[0] == f)
        assert sorted(got) == want

    def test_big_probe_uses_shuffle_path(self, setup):
        """Probe larger than the broadcast threshold goes through the
        shuffle path and still returns correct results."""
        session, rows, idf = setup
        session.context.config.broadcast_threshold = 64  # force shuffle
        try:
            probe = session.create_dataframe(
                [(k,) for k in range(60)], Schema.of(("k", LONG)), "p"
            )
            got = probe.join(idf.to_df(), on=("k", "src")).collect_tuples()
            want = [(r[0],) + r for r in rows]
            assert sorted(got) == sorted(want)
        finally:
            session.context.config.broadcast_threshold = 10 * 1024 * 1024


class TestExtractKeyRange:
    """Range-predicate recognition feeding the ordered index (DESIGN.md §15)."""

    def _extract(self, cond):
        from repro.indexed.rules import extract_key_range

        return extract_key_range(cond, "src")

    def test_single_comparisons_keep_inclusivity(self):
        kr, residual = self._extract(col("src") < 5)
        assert residual is None and kr.hi == 5 and not kr.hi_inclusive
        kr, _ = self._extract(col("src") <= 5)
        assert kr.hi == 5 and kr.hi_inclusive
        kr, _ = self._extract(col("src") > 5)
        assert kr.lo == 5 and not kr.lo_inclusive
        kr, _ = self._extract(col("src") >= 5)
        assert kr.lo == 5 and kr.lo_inclusive

    def test_literal_on_left_flips_operator(self):
        kr, _ = self._extract(lit(5) < col("src"))
        assert kr.lo == 5 and not kr.lo_inclusive

    def test_between_shape_intersects_both_bounds(self):
        kr, residual = self._extract(col("src").between(3, 7))
        assert residual is None
        assert (kr.lo, kr.lo_inclusive, kr.hi, kr.hi_inclusive) == (3, True, 7, True)

    def test_equal_keys_at_both_bounds_is_a_point(self):
        kr, _ = self._extract(col("src").between(5, 5))
        assert not kr.is_empty() and kr.matches(5) and not kr.matches(6)

    def test_reversed_bounds_claimed_as_empty_range(self):
        kr, _ = self._extract(col("src").between(9, 2))
        assert kr is not None and kr.is_empty()

    def test_exclusive_pair_keeps_both_open_bounds(self):
        # (5, 6) open: no integer inside; KeyRange is type-agnostic so it
        # is not is_empty(), but neither endpoint may match.
        kr, _ = self._extract((col("src") > 5) & (col("src") < 6))
        assert not kr.matches(5) and not kr.matches(6)
        assert (kr.lo_inclusive, kr.hi_inclusive) == (False, False)

    def test_range_with_residual(self):
        kr, residual = self._extract((col("src") >= 3) & (col("w") > 0.5))
        assert kr.lo == 3 and residual is not None

    def test_prefix_like_claimed(self):
        kr, residual = self._extract(col("src").like("ab%"))
        assert residual is None and kr.prefix == "ab"

    def test_non_prefix_like_not_claimed(self):
        kr, residual = self._extract(col("src").like("%ab"))
        assert kr is None and residual is None

    def test_non_key_comparison_not_claimed(self):
        kr, residual = self._extract(col("w") > 0.5)
        assert kr is None and residual is None

    def test_equality_not_claimed_by_range_extractor(self):
        kr, _ = self._extract(col("src") == 5)
        assert kr is None

    def test_incompatible_conjunct_stays_residual(self):
        # prefix LIKE cannot intersect a numeric range: one claims, the
        # other must remain a residual filter, never be dropped.
        kr, residual = self._extract(col("src").like("ab%") & (col("src") > 5))
        assert kr is not None and residual is not None


class TestRangePlanSelection:
    def _plan(self, session, df):
        return session.plan_physical(df.plan)

    def test_between_uses_range_scan(self, setup):
        from repro.indexed.operators import IndexedRangeScanExec

        session, _, _ = setup
        p = self._plan(
            session, session.sql("SELECT * FROM edges_idx WHERE src BETWEEN 10 AND 20")
        )
        assert isinstance(p, IndexedRangeScanExec)
        assert "IndexedRangeScan" in p.tree_string()

    def test_range_with_residual_keeps_filter(self, setup):
        from repro.indexed.operators import IndexedRangeScanExec

        session, _, _ = setup
        p = self._plan(
            session,
            session.sql("SELECT * FROM edges_idx WHERE src < 20 AND w > 0.5"),
        )
        assert isinstance(p, FilterExec)
        assert isinstance(p.child, IndexedRangeScanExec)

    def test_equality_still_prefers_point_lookup(self, setup):
        session, _, _ = setup
        p = self._plan(
            session, session.sql("SELECT * FROM edges_idx WHERE src = 5 AND src < 20")
        )
        tree = p.tree_string()
        assert "IndexedLookup" in tree and "IndexedRangeScan" not in tree


class TestRangeBoundaryResults:
    """End-to-end bound handling: < and <= must never be conflated, empty
    and reversed ranges return exactly nothing."""

    def test_half_open_vs_closed_at_occupied_boundary(self, setup):
        session, rows, _ = setup
        lt = session.sql("SELECT src FROM edges_idx WHERE src < 30").collect_tuples()
        le = session.sql("SELECT src FROM edges_idx WHERE src <= 30").collect_tuples()
        assert sorted(lt) == sorted((r[0],) for r in rows if r[0] < 30)
        assert sorted(le) == sorted((r[0],) for r in rows if r[0] <= 30)
        boundary = sum(1 for r in rows if r[0] == 30)
        assert boundary > 0 and len(le) - len(lt) == boundary

    def test_equal_keys_at_both_bounds(self, setup):
        session, rows, _ = setup
        got = session.sql(
            "SELECT src, dst FROM edges_idx WHERE src BETWEEN 7 AND 7"
        ).collect_tuples()
        assert sorted(got) == sorted((r[0], r[1]) for r in rows if r[0] == 7)

    def test_reversed_bounds_return_nothing(self, setup):
        session, _, _ = setup
        assert (
            session.sql("SELECT * FROM edges_idx WHERE src BETWEEN 40 AND 10").collect_tuples()
            == []
        )

    def test_exclusive_empty_range(self, setup):
        session, _, _ = setup
        got = session.sql(
            "SELECT * FROM edges_idx WHERE src > 10 AND src < 11"
        ).collect_tuples()
        assert got == []

    def test_range_scan_metrics_scanned_vs_matched(self, setup):
        session, rows, _ = setup
        reg = session.context.registry
        session.sql("SELECT src FROM edges_idx WHERE src BETWEEN 10 AND 19").collect_tuples()
        matched = sum(1 for r in rows if 10 <= r[0] <= 19)
        assert reg.counter_total("ordered_index_range_scans_total") >= 1
        assert reg.counter_total("ordered_index_rows_matched_total") == matched
        # Integer keys cannot collide, so the seek decodes only matches.
        assert reg.counter_total("ordered_index_rows_scanned_total") == matched
        stats = reg.histogram_stats("ordered_index_range_selectivity")
        assert stats["count"] >= 1
