"""Indexed physical operators: broadcast prefiltering, left joins, scans."""

import random

import pytest

from repro.config import Config
from repro.sql.functions import col
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))
PROBE_SCHEMA = Schema.of(("k", LONG))


def make_rows(n=400, keys=40, seed=8):
    rng = random.Random(seed)
    return [(rng.randrange(keys), rng.randrange(keys), round(rng.random(), 4)) for _ in range(n)]


@pytest.fixture()
def env():
    session = Session(config=Config(default_parallelism=4, shuffle_partitions=4))
    rows = make_rows()
    df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
    idf = df.create_index("src").cache_index()
    return session, rows, idf


class TestBroadcastPath:
    def test_broadcast_join_prefilters_by_partition(self, env):
        """The broadcast fallback buckets probe rows by the index's
        partitioner, so each partition only probes keys it can own."""
        session, rows, idf = env
        probe = session.create_dataframe([(k,) for k in range(40)], PROBE_SCHEMA, "p")
        # Small probe => broadcast path (default 10 MB threshold).
        joined = probe.join(idf.to_df(), on=("k", "src"))
        got = sorted(joined.collect_tuples())
        want = sorted((r[0],) + r for r in rows)
        assert got == want

    def test_broadcast_accounts_network(self, env):
        session, rows, idf = env
        session.context.network.reset_counters()
        probe = session.create_dataframe([(1,), (2,)], PROBE_SCHEMA, "p")
        probe.join(idf.to_df(), on=("k", "src")).collect_tuples()
        assert session.context.network.bytes_cross_machine > 0
        assert "broadcast" in session.phase_timer.phases


class TestLeftJoin:
    def test_left_join_probe_preserved(self, env):
        session, rows, idf = env
        probe = session.create_dataframe(
            [(1,), (2,), (99999,)], PROBE_SCHEMA, "p"
        )
        joined = probe.join(idf.to_df(), on=("k", "src"), how="left")
        from repro.indexed.operators import IndexedJoinExec

        physical = session.plan_physical(joined.plan)
        assert isinstance(physical, IndexedJoinExec)
        got = joined.collect_tuples()
        matched = [t for t in got if t[0] != 99999]
        unmatched = [t for t in got if t[0] == 99999]
        assert unmatched == [(99999, None, None, None)]
        want = sorted((k,) + r for k in (1, 2) for r in rows if r[0] == k)
        assert sorted(matched) == want

    def test_left_join_with_indexed_left_falls_back(self, env):
        """A left-outer join preserving the indexed side cannot use the
        lookup-based operator; it must fall back and stay correct."""
        session, rows, idf = env
        probe = session.create_dataframe([(1,)], PROBE_SCHEMA, "p")
        joined = idf.to_df().join(probe, on=("src", "k"), how="left")
        from repro.indexed.operators import IndexedJoinExec

        physical = session.plan_physical(joined.plan)
        assert not isinstance(physical, IndexedJoinExec)
        got = joined.collect_tuples()
        assert len(got) == len(rows)  # every indexed row preserved
        assert all((t[3] == 1) == (t[0] == 1) for t in got)


class TestIndexedJoinResidual:
    def test_residual_via_sql(self, env):
        session, rows, idf = env
        idf.create_or_replace_temp_view("edges")
        session.create_dataframe(
            [(k,) for k in range(40)], PROBE_SCHEMA, "p"
        ).create_or_replace_temp_view("p")
        got = session.sql(
            "SELECT k, dst FROM p JOIN edges ON k = src AND w > 0.5"
        ).collect_tuples()
        want = sorted((r[0], r[1]) for r in rows if r[2] > 0.5)
        assert sorted(got) == want


class TestIndexedScan:
    def test_scan_preserves_partitioning(self, env):
        session, _, idf = env
        from repro.indexed.operators import IndexedScanExec

        scan = IndexedScanExec(session, idf)
        rdd = scan.execute()
        assert rdd.partitioner == idf.partitioner

    def test_scan_feeds_downstream_shuffle_free_group_by(self, env):
        """group_by on the index key over indexed data: the scan's preserved
        partitioning lets reduce_by_key-style ops skip a shuffle when keyed
        identically; results must match regardless."""
        session, rows, idf = env
        from collections import Counter

        got = dict(
            idf.to_df().group_by("src").count().collect_tuples()
        )
        assert got == dict(Counter(r[0] for r in rows))


class TestLookupExec:
    def test_multi_key_lookup_spans_partitions(self, env):
        session, rows, idf = env
        keys = [0, 1, 2, 3, 17, 39]
        got = sorted(
            idf.to_df().where(col("src").isin(*keys)).collect_tuples()
        )
        want = sorted(r for r in rows if r[0] in keys)
        assert got == want

    def test_lookup_duplicated_in_keys(self, env):
        session, rows, idf = env
        got = idf.to_df().where(col("src").isin(5, 5, 5)).collect_tuples()
        assert sorted(got) == sorted(r for r in rows if r[0] == 5)
