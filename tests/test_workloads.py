"""Workload generators: determinism, shapes, and queries running end-to-end."""

from collections import Counter

import pytest

from repro.config import Config
from repro.sql.session import Session
from repro.workloads import broconn, flights, snb, tpcds
from repro.workloads.zipf import zipf_probabilities, zipf_sample


@pytest.fixture()
def session() -> Session:
    return Session(config=Config(default_parallelism=4, shuffle_partitions=4))


class TestZipf:
    def test_probabilities_sum_to_one(self):
        import numpy as np

        p = zipf_probabilities(100, 1.2)
        assert abs(p.sum() - 1.0) < 1e-9
        assert (np.diff(p) <= 0).all()  # monotone decreasing in rank

    def test_sample_deterministic(self):
        a = zipf_sample(50, 1000, seed=3)
        b = zipf_sample(50, 1000, seed=3)
        assert (a == b).all()

    def test_sample_is_skewed(self):
        draws = zipf_sample(1000, 20000, alpha=1.3, seed=5)
        counts = Counter(draws.tolist())
        top = counts.most_common(1)[0][1]
        assert top > 3 * (20000 / 1000)  # hottest key far above uniform

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.2)


class TestSNB:
    def test_edge_rows_match_schema(self):
        rows = snb.generate_snb_edges(2)
        assert len(rows) == snb.num_edges(2)
        for r in rows[:20]:
            assert len(r) == len(snb.EDGE_SCHEMA)
            assert 0 <= r[0] < snb.num_persons(2)

    def test_persons_unique_ids(self):
        rows = snb.generate_snb_persons(2)
        ids = [r[0] for r in rows]
        assert len(set(ids)) == len(ids)

    def test_determinism(self):
        assert snb.generate_snb_edges(1, seed=9) == snb.generate_snb_edges(1, seed=9)

    def test_power_law_degrees(self):
        rows = snb.generate_snb_edges(5)
        deg = Counter(r[0] for r in rows)
        top = deg.most_common(1)[0][1]
        assert top > 5 * (len(rows) / snb.num_persons(5))

    def test_probe_keys_exist(self):
        rows = snb.generate_snb_edges(1)
        keys = snb.sample_probe_keys(rows, 20)
        srcs = {r[0] for r in rows}
        assert all(k in srcs for k in keys)

    def test_short_queries_run_on_vanilla_and_indexed(self, session):
        edges = snb.generate_snb_edges(1)
        persons = snb.generate_snb_persons(1)
        edges_df = session.create_dataframe(edges, snb.EDGE_SCHEMA, "edges")
        persons_df = session.create_dataframe(persons, snb.PERSON_SCHEMA, "persons")
        persons_df.cache().create_or_replace_temp_view("persons")
        pid = edges[0][0]

        # vanilla: columnar-cached view
        edges_df.cache().create_or_replace_temp_view("edges")
        vanilla = {
            q.name: sorted(session.sql(q.sql(pid)).collect_tuples())
            for q in snb.short_queries()
        }
        # indexed view, same query text
        idf = edges_df.create_index("edge_source").cache_index()
        idf.create_or_replace_temp_view("edges")
        indexed = {
            q.name: sorted(session.sql(q.sql(pid)).collect_tuples())
            for q in snb.short_queries()
        }
        for name in vanilla:
            if name == "SQ5":
                assert indexed[name][0][0] == pytest.approx(vanilla[name][0][0])
            else:
                assert indexed[name] == vanilla[name], name


class TestTPCDS:
    def test_scale_factor_scales_rows(self):
        assert tpcds.rows_for_scale_factor(10) == 10 * tpcds.rows_for_scale_factor(1)

    def test_date_dim_fixed_size(self):
        dim = tpcds.generate_date_dim()
        assert len(dim) == tpcds.NUM_DATES
        assert len({r[0] for r in dim}) == len(dim)  # unique date keys

    def test_sales_dates_covered_by_dim(self):
        sales = tpcds.generate_store_sales(1)
        dim_keys = {r[0] for r in tpcds.generate_date_dim()}
        assert all(r[0] in dim_keys for r in sales[:200])

    def test_join_query_equivalence(self, session):
        sales = tpcds.generate_store_sales(1)
        dim = tpcds.generate_date_dim()
        sales_df = session.create_dataframe(sales, tpcds.STORE_SALES_SCHEMA, "store_sales")
        dim_df = session.create_dataframe(dim, tpcds.DATE_DIM_SCHEMA, "date_dim")
        dim_df.cache().create_or_replace_temp_view("date_dim")

        sales_df.cache().create_or_replace_temp_view("store_sales")
        vanilla = sorted(session.sql(tpcds.join_sql(year=2000)).collect_tuples())

        idf = sales_df.create_index("ss_sold_date_sk").cache_index()
        idf.create_or_replace_temp_view("store_sales")
        indexed = sorted(session.sql(tpcds.join_sql(year=2000)).collect_tuples())
        assert vanilla == indexed
        assert len(vanilla) > 0


class TestFlights:
    def test_planted_match_counts_exact(self):
        rows = flights.generate_flights(5000)
        counts = Counter(r[0] for r in rows)
        for key, n in flights.PLANTED_MATCHES.items():
            assert counts[key] == n

    def test_tail_numbers_reference_planes(self):
        fl = flights.generate_flights(2000)
        pl = flights.generate_planes(2000)
        tails = {p[0] for p in pl}
        assert all(f[1] in tails for f in fl[:100])

    def test_select_flights(self):
        fl = flights.generate_flights(5000)
        sel = flights.select_flights(fl, 200)
        assert all(r[0] < 200 for r in sel)
        assert len(flights.select_flights(fl, 400)) > len(sel)

    def test_queries_equivalent_vanilla_vs_indexed(self, session):
        n = 3000
        fl = flights.generate_flights(n)
        pl = flights.generate_planes(n)
        fl_df = session.create_dataframe(fl, flights.FLIGHTS_SCHEMA, "flights")
        session.create_dataframe(pl, flights.PLANES_SCHEMA, "planes").cache() \
            .create_or_replace_temp_view("planes")
        for view, sel in (
            ("flights_sel200", flights.select_flights(fl, 200)),
            ("flights_sel400", flights.select_flights(fl, 400)),
        ):
            session.create_dataframe(sel, flights.FLIGHTS_SCHEMA, view) \
                .create_or_replace_temp_view(view)

        qs = flights.queries()
        fl_df.cache().create_or_replace_temp_view("flights")
        vanilla = {name: sorted(q(session).collect_tuples()) for name, q in qs.items()}

        # integer-keyed index for Q3-Q7
        idf_int = fl_df.create_index("flight_num").cache_index()
        idf_int.create_or_replace_temp_view("flights")
        for name in ("Q3", "Q4", "Q5", "Q6", "Q7"):
            assert sorted(qs[name](session).collect_tuples()) == vanilla[name], name

        # string-keyed index for Q1-Q2
        idf_str = fl_df.create_index("tail_num").cache_index()
        idf_str.create_or_replace_temp_view("flights")
        for name in ("Q1", "Q2"):
            assert sorted(qs[name](session).collect_tuples()) == vanilla[name], name

    def test_point_query_match_counts(self, session):
        fl = flights.generate_flights(3000)
        fl_df = session.create_dataframe(fl, flights.FLIGHTS_SCHEMA, "flights")
        idf = fl_df.create_index("flight_num").cache_index()
        assert len(idf.lookup_tuples(10)) == 10
        assert len(idf.lookup_tuples(100)) == 100
        assert len(idf.lookup_tuples(1000)) == 1000


class TestBroconn:
    def test_shape_and_determinism(self):
        rows = broconn.generate_broconn(500)
        assert len(rows) == 500
        assert rows == broconn.generate_broconn(500)
        for r in rows[:10]:
            assert len(r) == len(broconn.CONN_SCHEMA)

    def test_timestamps_monotone(self):
        rows = broconn.generate_broconn(200)
        ts = [r[0] for r in rows]
        assert ts == sorted(ts)

    def test_probe_sample_keys_exist(self):
        rows = broconn.generate_broconn(1000)
        probe = broconn.sample_probe(rows, fraction=0.01)
        hosts = {r[2] for r in rows}
        assert len(probe) == 10
        assert all(p[0] in hosts for p in probe)

    def test_fig1_join_runs(self, session):
        rows = broconn.generate_broconn(1000)
        probe = broconn.sample_probe(rows, fraction=0.01)
        conn_df = session.create_dataframe(rows, broconn.CONN_SCHEMA, "conn")
        probe_df = session.create_dataframe(probe, broconn.PROBE_SCHEMA, "probe")
        idf = conn_df.create_index("orig_h").cache_index()
        got = probe_df.join(idf.to_df(), on=("probe_h", "orig_h")).collect_tuples()
        want = [(p[0],) + r for p in probe for r in rows if r[2] == p[0]]
        assert sorted(got, key=repr) == sorted(want, key=repr)
