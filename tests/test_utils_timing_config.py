"""Stopwatch, PhaseTimer and Config behaviour."""

import time

import pytest

from repro.config import KB, MB, PAPER_DEFAULTS, Config
from repro.utils.timing import PhaseTimer, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first >= 0.01

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestPhaseTimer:
    def test_phase_context_manager(self):
        pt = PhaseTimer()
        with pt.phase("build"):
            time.sleep(0.005)
        with pt.phase("build"):
            pass
        assert pt.phases["build"] >= 0.005
        assert pt.total() == sum(pt.phases.values())

    def test_add_and_merge(self):
        a = PhaseTimer()
        a.add("x", 1.0)
        b = PhaseTimer()
        b.add("x", 0.5)
        b.add("y", 2.0)
        a.merge(b)
        assert a.phases == {"x": 1.5, "y": 2.0}

    def test_phase_records_on_exception(self):
        pt = PhaseTimer()
        with pytest.raises(ValueError):
            with pt.phase("broken"):
                raise ValueError
        assert "broken" in pt.phases


class TestConfig:
    def test_defaults_sane(self):
        cfg = Config()
        assert cfg.default_parallelism > 0
        assert cfg.broadcast_threshold == 10 * MB

    def test_paper_defaults_batch_size(self):
        assert PAPER_DEFAULTS.row_batch_size == 4 * MB  # Fig. 5 sweet spot

    def test_with_overrides_copies(self):
        cfg = Config()
        other = cfg.with_overrides(row_batch_size=KB)
        assert other.row_batch_size == KB
        assert cfg.row_batch_size != KB

    def test_extra_settings(self):
        cfg = Config(extra={"flag": True})
        assert cfg.get("flag") is True
        assert cfg.get("missing", 7) == 7
