"""Benchmark harness: result rendering, pairs, timing utilities."""

import pytest

from repro.bench.harness import FigureResult, Pair, build_pair, mean, median, time_call
from repro.bench.report import format_markdown_table, format_table
from repro.config import Config
from repro.sql.types import DOUBLE, LONG, Schema

SCHEMA = Schema.of(("k", LONG), ("v", DOUBLE))


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])
        assert "bbb" in out and "0.12500" in out

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_number_formatting(self):
        out = format_table(["n"], [[1234567.0], [0.00001234], [5.5]])
        assert "1,234,567" in out
        assert "5.500" in out

    def test_markdown_table(self):
        md = format_markdown_table(["a", "b"], [[1, "x"]])
        assert md.splitlines()[0] == "| a | b |"
        assert "| 1 | x |" in md


class TestFigureResult:
    def test_checks_and_shape_ok(self):
        fig = FigureResult("Fig. X", "t", ["a"], [[1]])
        fig.check("good", True)
        assert fig.shape_ok
        fig.check("bad", False)
        assert not fig.shape_ok

    def test_to_text_marks_mismatches(self):
        fig = FigureResult("Fig. X", "t", ["a"], [[1]], notes="note")
        fig.check("holds", True)
        fig.check("fails", False)
        text = fig.to_text()
        assert "[ok] holds" in text
        assert "[MISMATCH] fails" in text
        assert "note" in text

    def test_to_markdown(self):
        fig = FigureResult("Fig. X", "title", ["a"], [[1]])
        fig.check("c", True)
        md = fig.to_markdown()
        assert md.startswith("### Fig. X")
        assert "✅ c" in md


class TestTiming:
    def test_time_call_returns_repeats(self):
        calls = []
        times = time_call(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(times) == 3
        assert len(calls) == 5  # warmup included

    def test_median_mean(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert mean([1.0, 3.0]) == 2.0


class TestBuildPair:
    def test_pair_has_both_representations(self):
        rows = [(i % 5, float(i)) for i in range(100)]
        pair = build_pair(
            rows, SCHEMA, "k",
            config=Config(default_parallelism=2, shuffle_partitions=2),
        )
        assert pair.index_build_seconds > 0
        assert sorted(pair.vanilla.collect_tuples()) == sorted(rows)
        assert pair.indexed.count() == 100
        assert sorted(pair.indexed.lookup_tuples(3)) == sorted(
            r for r in rows if r[0] == 3
        )

    def test_register_views(self):
        rows = [(1, 1.0)]
        pair = build_pair(
            rows, SCHEMA, "k",
            config=Config(default_parallelism=2, shuffle_partitions=2),
        )
        pair.register_views("t")
        assert pair.session.table("t").count() == 1
        assert pair.session.table("t_idx").count() == 1


class TestExperimentRegistry:
    def test_all_paper_figures_covered(self):
        from repro.bench.experiments import ALL_EXPERIMENTS

        # Every evaluation figure of the paper (1, 4-15; 2 and 3 are
        # architecture diagrams) has a driver.
        assert set(ALL_EXPERIMENTS) == {
            "1", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15"
        }

    def test_main_rejects_unknown_figure(self, capsys):
        from repro.bench.experiments import main

        assert main(["--fig", "99"]) == 2

    def test_main_runs_one_small_figure(self, capsys):
        from repro.bench import experiments

        # Tiny fig-1 run through the CLI path.
        original = experiments.ALL_EXPERIMENTS["1"]
        experiments.ALL_EXPERIMENTS["1"] = lambda: original(n_rows=3000, runs=2)
        try:
            rc = experiments.main(["--fig", "1"])
        finally:
            experiments.ALL_EXPERIMENTS["1"] = original
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert rc in (0, 1)  # shape may flicker at tiny scale; CLI must work
