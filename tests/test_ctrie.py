"""cTrie: model-based correctness, snapshots, collisions, concurrency.

The index's correctness requirements (Section III-C/III-E): thread-safe
insert/lookup/remove, O(1) snapshots isolated from later writes, and
read-only snapshots for consistent iteration.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.ctrie import CTrie


class TestBasicOperations:
    def test_insert_lookup(self):
        t = CTrie()
        t.insert("a", 1)
        assert t.lookup("a") == 1

    def test_lookup_missing_returns_default(self):
        t = CTrie()
        assert t.lookup("missing") is None
        assert t.lookup("missing", -1) == -1

    def test_overwrite(self):
        t = CTrie()
        t.insert("k", 1)
        t.insert("k", 2)
        assert t.lookup("k") == 2
        assert len(t) == 1

    def test_remove(self):
        t = CTrie()
        t.insert("k", 1)
        assert t.remove("k") == 1
        assert t.lookup("k") is None
        assert t.remove("k") is None

    def test_none_value_distinct_from_absent(self):
        t = CTrie()
        t.insert("k", None)
        assert t.contains("k")
        assert "k" in t
        assert "other" not in t

    def test_getitem_raises_keyerror(self):
        t = CTrie()
        with pytest.raises(KeyError):
            _ = t["nope"]

    def test_setitem_getitem(self):
        t = CTrie()
        t["a"] = 5
        assert t["a"] == 5

    def test_mixed_key_types(self):
        t = CTrie()
        t.insert(1, "int")
        t.insert("1", "str")
        t.insert(1.5, "float")
        assert t.lookup(1) == "int"
        assert t.lookup("1") == "str"
        assert t.lookup(1.5) == "float"

    def test_many_keys_roundtrip(self):
        t = CTrie()
        for i in range(5000):
            t.insert(i, i * 2)
        assert len(t) == 5000
        for i in range(0, 5000, 97):
            assert t.lookup(i) == i * 2

    def test_items_match_dict(self):
        t = CTrie()
        ref = {}
        for i in range(300):
            t.insert(f"k{i}", i)
            ref[f"k{i}"] = i
        assert t.to_dict() == ref
        assert sorted(t.keys()) == sorted(ref.keys())
        assert sorted(t.values()) == sorted(ref.values())

    def test_deep_removal_contracts_paths(self):
        # Insert then remove everything: the trie must still work and be empty.
        t = CTrie()
        for i in range(2000):
            t.insert(i, i)
        for i in range(2000):
            assert t.remove(i) == i
        assert len(t) == 0
        t.insert(5, "back")
        assert t.lookup(5) == "back"


class TestRandomizedAgainstDict:
    def test_random_ops_match_model(self):
        rng = random.Random(1234)
        t = CTrie()
        ref: dict = {}
        for step in range(30000):
            op = rng.random()
            k = rng.randrange(2500)
            if op < 0.55:
                t.insert(k, step)
                ref[k] = step
            elif op < 0.8:
                assert t.lookup(k) == ref.get(k)
            else:
                assert t.remove(k) == ref.pop(k, None)
        assert t.to_dict() == ref


class TestSnapshots:
    def test_snapshot_isolated_from_parent_writes(self):
        t = CTrie()
        for i in range(500):
            t.insert(i, i)
        snap = t.snapshot()
        for i in range(500):
            t.insert(i, -i)
        t.insert("extra", 1)
        assert snap.to_dict() == {i: i for i in range(500)}

    def test_parent_isolated_from_snapshot_writes(self):
        t = CTrie()
        t.insert("a", 1)
        snap = t.snapshot()
        snap.insert("b", 2)
        snap.insert("a", 99)
        assert t.lookup("a") == 1
        assert t.lookup("b") is None

    def test_chained_snapshots(self):
        t = CTrie()
        states = []
        for gen in range(5):
            for i in range(50):
                t.insert((gen, i), gen)
            states.append((t.snapshot(), dict(t.items())))
        for snap, expected in states:
            assert snap.to_dict() == expected

    def test_read_only_snapshot_rejects_writes(self):
        t = CTrie()
        t.insert("a", 1)
        ro = t.read_only_snapshot()
        with pytest.raises(RuntimeError):
            ro.insert("b", 2)
        with pytest.raises(RuntimeError):
            ro.remove("a")
        assert ro.lookup("a") == 1

    def test_snapshot_then_remove_in_child(self):
        t = CTrie()
        for i in range(100):
            t.insert(i, i)
        snap = t.snapshot()
        for i in range(50):
            snap.remove(i)
        assert len(snap) == 50
        assert len(t) == 100

    def test_iteration_is_stable_under_concurrent_writes(self):
        # items() takes a read-only snapshot: concurrent inserts must not
        # appear mid-iteration.
        t = CTrie()
        for i in range(1000):
            t.insert(i, i)
        it = t.items()
        first = next(it)
        t.insert("new", 1)
        rest = list(it)
        seen = dict([first] + rest)
        assert "new" not in seen
        assert len(seen) == 1000


class TestHashCollisions:
    def test_colliding_keys_coexist(self):
        # Force full 32-bit collisions via a wrapper with a fixed hash.
        t = CTrie()

        class FixedHash(str):
            __slots__ = ()

        # hash32 of equal strings collide only if equal; instead craft via
        # tuple keys that collide at trie level rarely - use direct check:
        # insert many keys; correctness already covered. Here, verify LNode
        # behavior through keys engineered to share hash32.
        from repro.utils.hashing import hash32

        # Find two distinct ints with colliding 32-bit hashes by birthday
        # search over a bounded set (fast: ~90k tries for 32-bit would be
        # too slow, so synthesize collisions at the *bucket* level instead).
        buckets: dict = {}
        pair = None
        for i in range(200_000):
            h = hash32(i)
            if h in buckets:
                pair = (buckets[h], i)
                break
            buckets[h] = i
        if pair is None:
            pytest.skip("no 32-bit collision found in range (unlikely)")
        a, b = pair
        t.insert(a, "a")
        t.insert(b, "b")
        assert t.lookup(a) == "a"
        assert t.lookup(b) == "b"
        assert t.remove(a) == "a"
        assert t.lookup(b) == "b"


class TestConcurrency:
    def test_parallel_inserts_disjoint_keys(self):
        t = CTrie()

        def writer(tid: int) -> None:
            for i in range(2000):
                t.insert((tid, i), tid)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(6)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t) == 12000
        for tid in range(6):
            assert t.lookup((tid, 1999)) == tid

    def test_parallel_inserts_same_keys_last_write_wins(self):
        t = CTrie()
        barrier = threading.Barrier(4)

        def writer(tid: int) -> None:
            barrier.wait()
            for i in range(1000):
                t.insert(i, tid)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t) == 1000
        for i in range(1000):
            assert t.lookup(i) in range(4)

    def test_snapshot_during_concurrent_writes_sees_consistent_state(self):
        t = CTrie()
        for i in range(500):
            t.insert(i, 0)
        stop = threading.Event()

        def writer() -> None:
            v = 1
            while not stop.is_set():
                for i in range(500):
                    t.insert(i, v)
                v += 1

        th = threading.Thread(target=writer)
        th.start()
        try:
            for _ in range(20):
                snap = t.read_only_snapshot()
                d = snap.to_dict()
                assert len(d) == 500  # never a torn size
        finally:
            stop.set()
            th.join()

    def test_concurrent_mixed_ops_no_exceptions(self):
        t = CTrie()
        errors: list = []

        def worker(tid: int) -> None:
            rng = random.Random(tid)
            try:
                for i in range(3000):
                    op = rng.random()
                    k = rng.randrange(300)
                    if op < 0.5:
                        t.insert(k, (tid, i))
                    elif op < 0.8:
                        t.lookup(k)
                    else:
                        t.remove(k)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert errors == []
        # All surviving entries must be readable.
        for k, v in t.items():
            assert t.lookup(k) is not None or v is None


class CTrieMachine(RuleBasedStateMachine):
    """Stateful property test: CTrie tracks a dict model, snapshots freeze."""

    def __init__(self) -> None:
        super().__init__()
        self.trie = CTrie()
        self.model: dict = {}
        self.snapshots: list[tuple[CTrie, dict]] = []

    keys = st.one_of(st.integers(min_value=0, max_value=200), st.text(max_size=6))

    @rule(k=keys, v=st.integers())
    def insert(self, k, v):
        self.trie.insert(k, v)
        self.model[k] = v

    @rule(k=keys)
    def remove(self, k):
        assert self.trie.remove(k) == self.model.pop(k, None)

    @rule(k=keys)
    def lookup(self, k):
        assert self.trie.lookup(k) == self.model.get(k)

    @rule()
    def snapshot(self):
        if len(self.snapshots) < 5:
            self.snapshots.append((self.trie.snapshot(), dict(self.model)))

    @invariant()
    def snapshots_frozen(self):
        for snap, frozen in self.snapshots:
            assert snap.to_dict() == frozen

    @invariant()
    def size_matches(self):
        assert len(self.trie) == len(self.model)


TestCTrieStateful = CTrieMachine.TestCase
TestCTrieStateful.settings = settings(max_examples=25, stateful_step_count=40, deadline=None)
