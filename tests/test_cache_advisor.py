"""Cost-based cache advisor (DESIGN.md §17): model, anti-thrash, decisions.

Four layers under test:

* the cost model — lineage depth, decayed recurrence, value density;
* the ghost list and the memory manager's ``eviction_policy="cost"``;
* the auto-cache loop — admission, cached hits, epoch invalidation,
  pressure-driven auto-evict, user-pin shedding — always differential
  (advisor answers == plain answers);
* the three-way benchmark property: under one fixed budget the advisor
  does no more memory work than always-cache and no more recompute work
  than never-cache, on the same workload with identical rows.
"""

from __future__ import annotations

import random

import pytest

from repro.advisor.cost_model import DecayedCounter, Ewma, lineage_depth, value_density
from repro.advisor.ghost import GhostList
from repro.cluster.topology import private_cluster
from repro.config import Config
from repro.engine.context import EngineContext
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

SCHEMA = Schema.of(("k", LONG), ("v", DOUBLE), ("payload", STRING))


def make_rows(n=2000, keys=40, seed=0, width=100) -> list[tuple]:
    rng = random.Random(seed)
    return [
        (rng.randrange(keys), round(rng.random(), 6), "x" * rng.randrange(width // 2, width))
        for _ in range(n)
    ]


def make_session(mode="sequential", tmp_path=None, **overrides) -> Session:
    cfg = dict(
        default_parallelism=4,
        shuffle_partitions=4,
        scheduler_mode=mode,
        row_batch_size=8192,
        task_retry_backoff=0.001,
        task_retry_backoff_max=0.01,
    )
    if tmp_path is not None:
        cfg.setdefault("spill_dir", str(tmp_path))
    cfg.update(overrides)
    config = Config(**cfg)
    config.validate()
    ctx = EngineContext(
        config=config,
        topology=private_cluster(num_machines=1, executors_per_machine=2),
    )
    session = Session(context=ctx)
    session.create_dataframe(make_rows(), SCHEMA, name="t").create_or_replace_temp_view("t")
    return session


def rows_of(session: Session, text: str) -> list[tuple]:
    return sorted(session.sql(text).collect_tuples())


# ---------------------------------------------------------------------------
# Cost model units
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_lineage_depth_source_is_one(self):
        ctx = EngineContext(config=Config(default_parallelism=2))
        source = ctx.parallelize([1, 2, 3], 2)
        assert lineage_depth(source) == 1

    def test_lineage_depth_grows_with_chain(self):
        ctx = EngineContext(config=Config(default_parallelism=2))
        rdd = ctx.parallelize(list(range(10)), 2)
        for _ in range(5):
            rdd = rdd.map(lambda x: x + 1)
        assert lineage_depth(rdd) == 6

    def test_lineage_depth_diamond_takes_longest_path(self):
        ctx = EngineContext(config=Config(default_parallelism=2))
        source = ctx.parallelize([(1, 2), (3, 4)], 2)
        left = source.map(lambda x: x)  # depth 2
        right = source.map(lambda x: x).map(lambda x: x)  # depth 3
        joined = left.union(right)
        assert lineage_depth(joined) == 4

    def test_lineage_depth_memoizes_across_calls(self):
        ctx = EngineContext(config=Config(default_parallelism=2))
        cache: dict[int, int] = {}
        base = ctx.parallelize([1], 1).map(lambda x: x)
        assert lineage_depth(base, cache) == 2
        child = base.map(lambda x: x)
        assert lineage_depth(child, cache) == 3
        assert cache[base.rdd_id] == 2  # reused, not recomputed

    def test_value_density_orders_by_worth(self):
        # Expensive, deep, reused, small  >  cheap, shallow, unused, large.
        hot = value_density(0.5, 4, 10.0, 64 * 1024)
        cold = value_density(0.001, 1, 0.1, 8 << 20)
        assert hot > cold
        assert value_density(0.5, 4, 0.0, 1024) == 0.0  # no reuse -> worthless

    def test_value_density_scales_inverse_with_bytes(self):
        small = value_density(0.1, 1, 1.0, 1 << 20)
        big = value_density(0.1, 1, 1.0, 4 << 20)
        assert small == pytest.approx(4 * big)

    def test_decayed_counter_plain_at_decay_one(self):
        c = DecayedCounter()
        for t in range(1, 6):
            c.bump(t, 1.0)
        assert c.read(100, 1.0) == 5.0

    def test_decayed_counter_decays(self):
        c = DecayedCounter()
        c.bump(1, 0.5)
        assert c.read(1, 0.5) == 1.0
        assert c.read(3, 0.5) == pytest.approx(0.25)
        assert c.read(600, 0.5) == 0.0  # deep past: underflow shortcut

    def test_decayed_counter_bump_applies_pending_decay(self):
        c = DecayedCounter()
        c.bump(1, 0.5)
        c.bump(3, 0.5)  # 1.0 decayed two ticks -> 0.25, then +1
        assert c.read(3, 0.5) == pytest.approx(1.25)

    def test_ewma_adopts_first_then_smooths(self):
        e = Ewma()
        assert e.update(1.0) == 1.0
        assert 1.0 < e.update(2.0) < 2.0


# ---------------------------------------------------------------------------
# Ghost list units
# ---------------------------------------------------------------------------


class TestGhostList:
    def test_recently_shed_within_cooldown_only(self):
        g = GhostList(capacity=8, cooldown=4)
        g.record("a", tick=10)
        assert g.recently_shed("a", 12)
        assert g.recently_shed("a", 14)
        assert not g.recently_shed("a", 15)  # cooldown expired
        assert not g.recently_shed("b", 11)  # never shed

    def test_capacity_bound_drops_oldest(self):
        g = GhostList(capacity=2, cooldown=100)
        g.record("a", 1)
        g.record("b", 2)
        g.record("c", 3)
        assert len(g) == 2
        assert "a" not in g
        assert "b" in g and "c" in g

    def test_capacity_zero_disables(self):
        g = GhostList(capacity=0, cooldown=100)
        g.record("a", 1)
        assert len(g) == 0
        assert not g.recently_shed("a", 1)

    def test_forget_and_stats(self):
        g = GhostList(capacity=4, cooldown=10)
        g.record("a", 1)
        assert g.recently_shed("a", 2)
        g.forget("a")
        assert not g.recently_shed("a", 2)
        stats = g.stats()
        assert stats["recorded"] == 1
        assert stats["blocked"] == 1
        assert stats["entries"] == 0

    def test_rerecord_refreshes_tick(self):
        g = GhostList(capacity=4, cooldown=2)
        g.record("a", 1)
        assert not g.recently_shed("a", 9)  # first shed long expired
        g.record("a", 10)
        assert g.recently_shed("a", 11)  # re-shed restarts the cooldown


# ---------------------------------------------------------------------------
# Config validation: every problem reported together
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_advisor_knob_problems_reported_together(self):
        cfg = Config(
            advisor_score_threshold=-1.0,
            advisor_ghost_size=-3,
            advisor_ghost_cooldown=-1,
            advisor_recurrence_decay=0.0,
            advisor_shed_pressure=1.5,
        )
        with pytest.raises(ValueError) as exc:
            cfg.validate()
        message = str(exc.value)
        for fragment in (
            "advisor_score_threshold",
            "advisor_ghost_size",
            "advisor_ghost_cooldown",
            "advisor_recurrence_decay",
            "advisor_shed_pressure",
        ):
            assert fragment in message

    def test_cost_policy_accepted(self):
        Config(eviction_policy="cost").validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="eviction_policy"):
            Config(eviction_policy="clairvoyant").validate()

    def test_defaults_valid(self):
        Config().validate()


# ---------------------------------------------------------------------------
# Cost eviction policy in the memory manager
# ---------------------------------------------------------------------------


class TestCostEvictionPolicy:
    def test_low_value_blocks_are_first_victims(self):
        session = make_session(
            executor_memory_bytes=1 << 20, eviction_policy="cost"
        )
        ctx = session.context
        mm = ctx.executors["m0e0"].memory_manager
        bm = ctx.executors["m0e0"].block_manager
        cheap, hot = (101, 0), (202, 0)
        bm.put(cheap, [b"c" * 2000])
        bm.put(hot, [b"h" * 2000])
        # Teach the advisor that block 202 is expensive to rebuild and hot,
        # while 101 has never been recomputed or re-read.
        fat_rdd = ctx.parallelize([1], 1).map(lambda x: x).map(lambda x: x)
        ctx.advisor.note_block_compute(hot, fat_rdd, seconds=0.25)
        for _ in range(6):
            ctx.advisor.note_block_access(hot)
        order = mm._victim_order(protect=None)
        assert order.index(cheap) < order.index(hot)

    def test_cost_policy_publishes_score_gauges(self):
        session = make_session(executor_memory_bytes=1 << 20, eviction_policy="cost")
        ctx = session.context
        bm = ctx.executors["m0e0"].block_manager
        bm.put((7, 0), [b"x" * 512])
        ctx.executors["m0e0"].memory_manager._victim_order(protect=None)
        assert ctx.registry.gauge_value("cache_advisor_score", rdd=7) is not None

    def test_ghost_readmission_protects_block(self):
        session = make_session(
            executor_memory_bytes=1 << 20, advisor_ghost_cooldown=50
        )
        ctx = session.context
        mm = ctx.executors["m0e0"].memory_manager
        bm = ctx.executors["m0e0"].block_manager
        thrasher, other = (1, 0), (2, 0)
        bm.put(thrasher, [b"a" * 1000])
        bm.put(other, [b"b" * 1000])
        bm.remove(thrasher)
        mm.ghost.record(thrasher, mm._tick)  # as if just shed under pressure
        bm.put(thrasher, [b"a" * 1000])  # re-admission within cooldown
        assert ctx.registry.counter_total("memory_ghost_readmissions_total") == 1
        order = mm._victim_order(protect=None)
        assert order[-1] == thrasher  # deferred to last, never excluded
        assert set(order) == {thrasher, other}


# ---------------------------------------------------------------------------
# Anti-thrash regression (the BENCH_PR4 churn loop)
# ---------------------------------------------------------------------------


def churn_run(tmp_path, ghost_size: int):
    """The fig06-shaped working-set-over-budget loop: index + repeated
    probes under a budget about half the working set."""
    session = make_session(
        tmp_path=tmp_path,
        executor_memory_bytes=120_000,
        advisor_ghost_size=ghost_size,
        advisor_ghost_cooldown=16,
    )
    df = session.create_dataframe(make_rows(1500, seed=3), SCHEMA, "big")
    idf = df.create_index("k", num_partitions=8).cache_index()
    rows = []
    for k in (1, 5, 9, 1, 5, 9, 1, 5, 9, 2, 1, 5):
        rows.append(sorted(idf.lookup_tuples(k)))
    reg = session.context.registry
    return rows, {
        "spills": reg.counter_total("memory_spills_total"),
        "evictions": reg.counter_total("memory_evictions_total"),
        "faulted_back": reg.counter_total("memory_faulted_back_bytes_total"),
    }


class TestAntiThrash:
    def test_ghost_bounds_spill_churn(self, tmp_path):
        rows_ghost, with_ghost = churn_run(tmp_path / "g", ghost_size=64)
        rows_plain, without = churn_run(tmp_path / "p", ghost_size=0)
        assert rows_ghost == rows_plain  # differential: same answers
        # The regression gate: the ghost cooldown must not *increase* churn,
        # and the repeated-probe loop must stay well under the 24-spill
        # storm BENCH_PR4 measured for this working-set/budget shape.
        assert with_ghost["spills"] <= without["spills"]
        assert with_ghost["spills"] < 24
        assert with_ghost["evictions"] <= without["evictions"] + 1


# ---------------------------------------------------------------------------
# The auto-cache loop (differential end to end)
# ---------------------------------------------------------------------------

HOT = "SELECT k, SUM(v) AS s FROM t GROUP BY k"


class TestAutoCache:
    def test_hot_query_gets_cached_and_served(self):
        session = make_session(auto_cache=True, advisor_score_threshold=0.0)
        first = rows_of(session, HOT)
        for _ in range(3):
            assert rows_of(session, HOT) == first
        reg = session.context.registry
        assert reg.counter_total("cache_advisor_hits_total") >= 2
        decisions = reg.counter_by_label("cache_advisor_decisions_total", "action")
        assert decisions.get("auto_cache", 0) >= 1

    def test_threshold_requires_recurrence(self):
        # With a realistic threshold the *first* sighting is never cached
        # (exec time unknown, recurrence 1): caching needs repetition.
        session = make_session(auto_cache=True, advisor_score_threshold=10_000.0)
        for _ in range(3):
            rows_of(session, HOT)
        reg = session.context.registry
        decisions = reg.counter_by_label("cache_advisor_decisions_total", "action")
        assert decisions.get("auto_cache", 0) == 0
        assert reg.counter_total("cache_advisor_hits_total") == 0

    def test_disabled_by_default(self):
        session = make_session()
        for _ in range(3):
            rows_of(session, HOT)
        reg = session.context.registry
        assert reg.counter_total("cache_advisor_decisions_total") == 0
        assert reg.counter_total("cache_advisor_hits_total") == 0
        # Passive collection still ran: the report knows the fingerprint.
        assert "sum(v)" in session.cache_advisor_report()

    def test_epoch_invalidation_never_serves_stale_rows(self):
        session = make_session(auto_cache=True, advisor_score_threshold=0.0)
        old = rows_of(session, HOT)
        assert rows_of(session, HOT) == old  # now served by the advisor
        # Catalog change: same view name, different rows -> new epoch.
        session.create_dataframe(
            make_rows(500, seed=9), SCHEMA, name="t"
        ).create_or_replace_temp_view("t")
        fresh = rows_of(session, HOT)
        assert fresh != old
        reference = make_session()  # never-cached reference session
        reference.create_dataframe(
            make_rows(500, seed=9), SCHEMA, name="t"
        ).create_or_replace_temp_view("t")
        assert fresh == rows_of(reference, HOT)

    def test_prepared_statement_bindings_never_cross(self):
        session = make_session(auto_cache=True, advisor_score_threshold=0.0)
        statement = session.prepare("SELECT * FROM t WHERE k = ?")
        for k in (1, 2, 3, 1, 2, 3):
            got = sorted(statement.execute([k]))
            want = rows_of(session, f"SELECT * FROM t WHERE k = {k}")
            assert got == want

    def test_pressure_shed_keeps_answers(self, tmp_path):
        session = make_session(
            tmp_path=tmp_path,
            auto_cache=True,
            advisor_score_threshold=0.0,
            advisor_shed_pressure=0.0,  # shed at every query boundary
            executor_memory_bytes=400_000,
        )
        queries = [HOT, "SELECT * FROM t WHERE k = 3", "SELECT COUNT(*) AS n FROM t"]
        reference = {q: rows_of(make_session(), q) for q in queries}
        for _ in range(4):
            for q in queries:
                assert rows_of(session, q) == reference[q]
        reg = session.context.registry
        decisions = reg.counter_by_label("cache_advisor_decisions_total", "action")
        assert decisions.get("auto_evict", 0) >= 1
        kinds = {e.kind for e in session.context.metrics.recovery_events}
        assert "advisor_auto_evict" in kinds

    def test_ghost_blocks_immediate_readmission(self, tmp_path):
        session = make_session(
            tmp_path=tmp_path,
            auto_cache=True,
            advisor_score_threshold=0.0,
            advisor_shed_pressure=0.0,
            advisor_ghost_cooldown=1000,
            executor_memory_bytes=400_000,
        )
        first = rows_of(session, HOT)
        assert rows_of(session, HOT) == first  # cached...
        assert rows_of(session, HOT) == first  # ...then shed, then blocked
        decisions = session.context.registry.counter_by_label(
            "cache_advisor_decisions_total", "action"
        )
        assert decisions.get("readmit_blocked", 0) >= 1

    def test_cold_user_pin_auto_unpinned_under_pressure(self):
        session = make_session(
            auto_cache=True, advisor_shed_pressure=0.0, executor_memory_bytes=1 << 22
        )
        df = session.create_dataframe(make_rows(300, seed=7), SCHEMA, "pinned")
        pinned = df.cache()
        baseline = sorted(pinned.collect_tuples())
        # Burn enough advisor ticks for the pin's access counter (one bump
        # per partition at materialization) to decay below the cold bar.
        for _ in range(60):
            rows_of(session, "SELECT COUNT(*) AS n FROM t")
        events = {e.kind for e in session.context.metrics.recovery_events}
        assert "advisor_auto_unpin" in events
        assert sorted(pinned.collect_tuples()) == baseline  # rebuilt from lineage

    def test_spans_and_report(self):
        session = make_session(
            auto_cache=True, advisor_score_threshold=0.0, tracing_enabled=True
        )
        for _ in range(3):
            rows_of(session, HOT)
        tracer = session.context.tracer
        assert tracer.integrity_errors() == []
        assert any(s.kind == "advisor" for s in tracer.finished_spans())
        report = session.cache_advisor_report()
        assert "auto_cached" in report and "auto_cache" in report


# ---------------------------------------------------------------------------
# Advisor vs always-cache vs never-cache, one fixed budget
# ---------------------------------------------------------------------------


def mixed_workload(session: Session) -> list[list[tuple]]:
    """Two hot queries repeated among a stream of one-off queries."""
    out = []
    for i in range(10):
        out.append(rows_of(session, HOT))
        out.append(rows_of(session, "SELECT k, COUNT(*) AS n FROM t GROUP BY k"))
        out.append(rows_of(session, f"SELECT * FROM t WHERE k = {i}"))  # one-off
    return out


class TestAdvisorBeatsBothBaselines:
    def test_three_way_same_rows_less_work(self, tmp_path):
        budget = dict(executor_memory_bytes=600_000)
        never = make_session(tmp_path=tmp_path / "n", **budget)
        always = make_session(
            tmp_path=tmp_path / "a",
            auto_cache=True,
            advisor_score_threshold=0.0,
            **budget,
        )
        advisor = make_session(
            tmp_path=tmp_path / "d",
            auto_cache=True,
            advisor_score_threshold=0.05,
            **budget,
        )
        results = {name: mixed_workload(s) for name, s in
                   (("never", never), ("always", always), ("advisor", advisor))}
        assert results["never"] == results["always"] == results["advisor"]

        def reg(s):
            return s.context.registry

        # vs never-cache: the hot queries stop being recomputed.
        assert reg(advisor).counter_total("cache_advisor_hits_total") >= 16
        # vs always-cache: the one-off queries are never materialized, so
        # the advisor admits far fewer results and does no more memory work.
        always_admits = reg(always).counter_by_label(
            "cache_advisor_decisions_total", "action"
        ).get("auto_cache", 0)
        advisor_admits = reg(advisor).counter_by_label(
            "cache_advisor_decisions_total", "action"
        ).get("auto_cache", 0)
        assert 1 <= advisor_admits <= 2 < always_admits
        assert reg(advisor).counter_total("memory_put_bytes_total") <= reg(
            always
        ).counter_total("memory_put_bytes_total")
        def churn(s):
            return reg(s).counter_total("memory_spills_total") + reg(s).counter_total(
                "memory_evictions_total"
            )

        assert churn(advisor) <= churn(always)


# ---------------------------------------------------------------------------
# Property: the advisor never changes answers (50 seeds x 3 modes x chaos)
# ---------------------------------------------------------------------------

MODES = ("sequential", "threads", "processes")
PROPERTY_SEEDS = list(range(50))


def seeded_query(seed: int) -> str:
    rng = random.Random(seed)
    kind = rng.randrange(4)
    if kind == 0:
        return f"SELECT * FROM t WHERE k = {rng.randrange(12)}"
    if kind == 1:
        return (
            f"SELECT k, SUM(v) AS s FROM t WHERE k < {rng.randrange(4, 30)} GROUP BY k"
        )
    if kind == 2:
        return "SELECT k, COUNT(*) AS n FROM t GROUP BY k"
    return f"SELECT * FROM t WHERE k = {rng.randrange(6)} AND v > 0.5"


@pytest.mark.parametrize("mode", MODES)
def test_advisor_is_answer_invariant_under_chaos(mode, tmp_path):
    """50 seeded queries per scheduler mode, repeated (so caching engages),
    with pressure storms between batches: an advisor session under a tight
    budget must answer exactly like a plain unbounded session."""
    plain = make_session(mode=mode)
    advised = make_session(
        mode=mode,
        tmp_path=tmp_path,
        auto_cache=True,
        advisor_score_threshold=0.01,
        advisor_shed_pressure=0.5,
        executor_memory_bytes=500_000,
        eviction_policy="cost",
    )
    rng = random.Random(4242)
    mismatches = []
    for i, seed in enumerate(PROPERTY_SEEDS):
        text = seeded_query(seed % 17)  # collisions on purpose: recurrence
        want = rows_of(plain, text)
        if rows_of(advised, text) != want:
            mismatches.append(seed)
        if i % 7 == 6:  # chaos squeeze between queries
            for runtime in advised.context.executors.values():
                runtime.block_manager.pressure_storm(rng.choice([0.0, 0.3, 0.6]))
        if rows_of(advised, text) != want:  # post-storm re-ask
            mismatches.append(seed)
    assert mismatches == [], f"advisor changed answers for seeds {mismatches} ({mode})"


# ---------------------------------------------------------------------------
# Serve-tier integration
# ---------------------------------------------------------------------------


class TestServeIntegration:
    def _server(self, **cfg_overrides):
        from repro.serve.server import QueryServer, ServeConfig

        from .conftest import USER_SCHEMA, make_users

        config = Config(
            default_parallelism=4,
            shuffle_partitions=4,
            row_batch_size=4096,
            **cfg_overrides,
        )
        session = Session(context=EngineContext(config=config))
        df = session.create_dataframe(make_users(120), USER_SCHEMA, name="users")
        idf = df.create_index("uid")
        server = QueryServer(session, ServeConfig(num_workers=1))
        server.publish("users", idf)
        return session, idf, server

    def test_fastpath_hits_feed_recurrence(self):
        session, _, server = self._server()
        with server:
            for uid in (1, 2, 3, 1, 2, 1):
                server.query(f"SELECT * FROM users WHERE uid = {uid}")
        assert session.context.advisor.serve_recurrence("users") >= 3.0

    def test_cold_pin_dropped_under_pressure_still_answers(self):
        session, idf, server = self._server(auto_cache=True, advisor_shed_pressure=0.0)
        with server:
            # "users" has zero fast-path recurrence -> cold. Publishing a
            # second view under (forced) pressure sheds the cold pin.
            from .conftest import USER_SCHEMA, make_users

            other = session.create_dataframe(
                make_users(50), USER_SCHEMA, name="other"
            ).create_index("uid")
            server.publish("other", other)
            assert "users" not in server.views()
            assert "other" in server.views()
            result = server.query("SELECT * FROM users WHERE uid = 7")
            assert result.path == "general"  # unpinned -> general path
            assert sorted(result.rows) == sorted(
                session.sql("SELECT * FROM users WHERE uid = 7").collect_tuples()
            )
        events = {e.kind for e in session.context.metrics.recovery_events}
        assert "advisor_serve_unpin" in events

    def test_hot_pin_survives_pressure(self):
        session, idf, server = self._server(auto_cache=True, advisor_shed_pressure=0.0)
        with server:
            from .conftest import USER_SCHEMA, make_users

            for uid in (1, 2, 3, 4, 5):
                server.query(f"SELECT * FROM users WHERE uid = {uid}")
            other = session.create_dataframe(
                make_users(50), USER_SCHEMA, name="other"
            ).create_index("uid")
            server.publish("other", other)
            assert "users" in server.views()  # hot: recurrence kept the pin
