"""IndexedDataFrame public API: create/cache/lookup/append, MVCC, versions,
fault tolerance, staleness guard."""

import random

import pytest

from repro.config import Config
from repro.engine.context import EngineContext
from repro.indexed import IndexedDataFrame
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))


@pytest.fixture()
def session() -> Session:
    return Session(config=Config(default_parallelism=4, shuffle_partitions=4, row_batch_size=8192))


def make_rows(n=1000, keys=100, seed=2) -> list[tuple]:
    rng = random.Random(seed)
    return [(rng.randrange(keys), rng.randrange(keys), round(rng.random(), 6)) for _ in range(n)]


@pytest.fixture()
def rows() -> list[tuple]:
    return make_rows()


@pytest.fixture()
def idf(session, rows):
    df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
    return df.create_index("src").cache_index()


class TestCreateIndex:
    def test_via_dataframe_method(self, session, rows):
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        idf = df.create_index("src")
        assert idf.key_column == "src"
        assert idf.version == 0

    def test_missing_column_rejected(self, session, rows):
        df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
        with pytest.raises(KeyError):
            df.create_index("nope")

    def test_count_matches_source(self, idf, rows):
        assert idf.count() == len(rows)

    def test_collect_returns_all_rows(self, idf, rows):
        assert sorted(tuple(r) for r in idf.collect()) == sorted(rows)

    def test_partitions_respect_hash_placement(self, idf):
        """Every key's rows live on the partition its hash selects."""
        placements = idf.session.context.run_job(
            idf.rdd, lambda it, _ctx: [k for k, _ in next(iter(it)).ctrie.items()]
        )
        # keys stored as the raw value for LONG columns
        for pid, trie_keys in enumerate(placements):
            for k in trie_keys:
                assert idf.rdd.partition_for_key(k) == pid

    def test_installs_rules_on_session(self, session, rows):
        from repro.indexed.rules import indexed_strategy

        session.create_dataframe(rows, EDGE_SCHEMA, "e").create_index("src")
        assert indexed_strategy in session.extra_strategies
        # idempotent
        session.create_dataframe(rows, EDGE_SCHEMA, "e2").create_index("src")
        assert session.extra_strategies.count(indexed_strategy) == 1


class TestLookup:
    def test_lookup_matches_reference(self, idf, rows):
        for key in (0, 1, 42, 99):
            expect = [r for r in rows if r[0] == key]
            assert sorted(idf.lookup_tuples(key)) == sorted(expect)

    def test_lookup_missing_key(self, idf):
        assert idf.lookup_tuples(123456) == []

    def test_get_rows_returns_dataframe(self, idf, rows):
        out = idf.get_rows(7)
        expect = [r for r in rows if r[0] == 7]
        assert sorted(tuple(r) for r in out.collect()) == sorted(expect)
        assert out.columns == ["src", "dst", "w"]

    def test_lookup_runs_single_partition_job(self, idf):
        metrics = idf.session.context.metrics
        metrics.reset()
        idf.lookup_tuples(3)
        # One result stage with exactly one task (the owning partition).
        stages = [s for s in metrics.stages.values() if s.tasks]
        assert sum(len(s.tasks) for s in stages) == 1


class TestAppend:
    def test_append_creates_new_version(self, idf):
        idf2 = idf.append_rows([(5, 5, 5.0)])
        assert idf2.version == idf.version + 1
        assert idf2 is not idf

    def test_append_visible_in_child_only(self, idf, rows):
        before = len(idf.lookup_tuples(5))
        idf2 = idf.append_rows([(5, 123, 1.0)])
        assert len(idf2.lookup_tuples(5)) == before + 1
        assert len(idf.lookup_tuples(5)) == before

    def test_append_dataframe_argument(self, idf, session):
        extra = session.create_dataframe([(7, 1, 1.0), (8, 2, 2.0)], EDGE_SCHEMA, "x")
        idf2 = idf.append_rows(extra)
        assert idf2.count() == idf.count() + 2

    def test_append_wrong_width_rejected(self, idf):
        with pytest.raises(ValueError):
            idf.append_rows([(1, 2)])

    def test_fine_grained_many_appends(self, idf):
        cur = idf
        for i in range(10):
            cur = cur.append_rows([(1000 + i, i, float(i))])
        assert cur.version == 10
        assert cur.count() == idf.count() + 10
        for i in range(10):
            assert cur.lookup_tuples(1000 + i) == [(1000 + i, i, float(i))]

    def test_divergent_appends_listing2(self, idf):
        """Listing 2: two appends on one parent; materialized in reverse
        order; both visible with their own data only."""
        a = idf.append_rows([(2000, 1, 1.0)])
        b = idf.append_rows([(3000, 2, 2.0)])
        # materialize B first (reverse creation order), then A
        assert b.lookup_tuples(3000) == [(3000, 2, 2.0)]
        assert a.lookup_tuples(2000) == [(2000, 1, 1.0)]
        assert a.lookup_tuples(3000) == []
        assert b.lookup_tuples(2000) == []

    def test_replay_log_retains_appends(self, idf):
        idf.append_rows([(1, 1, 1.0)])
        idf.append_rows([(2, 2, 2.0)])
        assert len(idf.replay_log) == 2


class TestFaultTolerance:
    def test_lookup_after_executor_loss(self, idf, rows):
        ctx = idf.session.context
        ctx.kill_executor(ctx.alive_executor_ids()[0])
        for key in (0, 42, 99):
            expect = [r for r in rows if r[0] == key]
            assert sorted(idf.lookup_tuples(key)) == sorted(expect)

    def test_append_chain_replayed_after_loss(self, idf, rows):
        idf2 = idf.append_rows([(42, 777, 7.7)])
        idf3 = idf2.append_rows([(42, 888, 8.8)])
        assert len(idf3.lookup_tuples(42)) == len([r for r in rows if r[0] == 42]) + 2
        ctx = idf.session.context
        # Kill every executor but one: all cached partitions + map outputs gone.
        for e in list(ctx.alive_executor_ids())[:-1]:
            ctx.kill_executor(e)
        got = idf3.lookup_tuples(42)
        expect = sorted([r for r in rows if r[0] == 42] + [(42, 777, 7.7), (42, 888, 8.8)])
        assert sorted(got) == expect

    def test_stale_partition_version_guard(self, idf):
        """Plant a stale partition object in a block manager; the versioned
        RDD must refuse and recompute it (Section III-D)."""
        idf2 = idf.append_rows([(0, 0, 0.0)])
        idf2.cache_index()
        ctx = idf.session.context
        # Overwrite one cached v1 block with the parent's v0 partition.
        split = 0
        block_id = (idf2.rdd.rdd_id, split)
        stale = None
        for runtime in ctx.executors.values():
            v0_block = runtime.block_manager.get((idf.rdd.rdd_id, split))
            if v0_block is not None:
                stale = v0_block
                break
        assert stale is not None
        for runtime in ctx.executors.values():
            if runtime.block_manager.contains(block_id):
                runtime.block_manager.put(block_id, stale)
        # Query: the guard must detect version 0 != 1 and rebuild.
        def read_version(it, _ctx):
            return next(iter(it)).version

        versions = ctx.run_job(idf2.rdd, read_version)
        assert all(v == 1 for v in versions)


class TestMemoryStats:
    def test_stats_shape(self, idf):
        stats = idf.memory_stats()
        assert len(stats) == idf.num_partitions
        for s in stats:
            assert s["index_bytes"] > 0
            assert s["data_bytes"] > 0
            assert s["overhead"] == pytest.approx(s["index_bytes"] / s["data_bytes"])


class TestStringKeyIndex:
    def test_string_index_end_to_end(self, session):
        schema = Schema.of(("tail", STRING), ("x", LONG))
        rows = [(f"N{i % 20}", i) for i in range(200)]
        df = session.create_dataframe(rows, schema, "t")
        idf = df.create_index("tail").cache_index()
        assert sorted(idf.lookup_tuples("N3")) == sorted(r for r in rows if r[0] == "N3")
        assert idf.lookup_tuples("XX") == []
