"""ColumnarIndexedPartition: equivalence with the row store + columnar paths."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexed.columnar_partition import ColumnarIndexedPartition
from repro.indexed.partition import IndexedPartition
from repro.sql.types import DOUBLE, LONG, STRING, Schema

SCHEMA = Schema.of(("k", LONG), ("v", LONG), ("w", DOUBLE))
STR_SCHEMA = Schema.of(("tail", STRING), ("x", LONG))


def make(schema=SCHEMA, key="k", chunk_rows=64, **kw) -> ColumnarIndexedPartition:
    return ColumnarIndexedPartition(schema, key, chunk_rows=chunk_rows, **kw)


def rows_for(n=500, keys=30, seed=3):
    rng = random.Random(seed)
    return [(rng.randrange(keys), i, round(rng.random(), 4)) for i in range(n)]


class TestEquivalenceWithRowStore:
    """The two storage formats must agree on every read API."""

    def _pair(self, rows):
        row_p = IndexedPartition(SCHEMA, "k", batch_size=4096)
        col_p = make()
        row_p.insert_rows(rows)
        col_p.insert_rows(rows)
        return row_p, col_p

    def test_lookup_agrees(self):
        rows = rows_for()
        row_p, col_p = self._pair(rows)
        for k in range(35):
            assert col_p.lookup(k) == row_p.lookup(k)

    def test_iter_rows_agrees(self):
        rows = rows_for()
        row_p, col_p = self._pair(rows)
        assert sorted(col_p.iter_rows()) == sorted(row_p.iter_rows())

    def test_counters_agree(self):
        rows = rows_for()
        row_p, col_p = self._pair(rows)
        assert col_p.row_count == row_p.row_count
        assert col_p.num_keys() == row_p.num_keys()

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.integers(min_value=-100, max_value=100),
                st.floats(allow_nan=False, width=32),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_lookup_property(self, rows):
        col_p = make(chunk_rows=16)
        col_p.insert_rows(rows)
        model: dict = {}
        for r in rows:
            model.setdefault(r[0], []).insert(0, r)
        for k in range(11):
            assert col_p.lookup(k) == model.get(k, [])


class TestColumnarSpecifics:
    def test_rows_span_chunks(self):
        p = make(chunk_rows=16)
        p.insert_rows([(1, i, 0.0) for i in range(100)])
        assert len(p.chunks) > 5
        assert [r[1] for r in p.lookup(1)] == list(reversed(range(100)))

    def test_scan_columns_vectorized(self):
        p = make(chunk_rows=32)
        rows = rows_for(200)
        p.insert_rows(rows)
        cols = p.scan_columns(["k", "w"])
        assert cols is not None
        assert len(cols["k"]) == 200
        assert sorted(cols["k"].tolist()) == sorted(r[0] for r in rows)
        assert cols["w"].dtype == np.float64

    def test_string_keys_hash_verified(self):
        p = ColumnarIndexedPartition(STR_SCHEMA, "tail", chunk_rows=32)
        p.insert_rows([("N1", 1), ("N2", 2), ("N1", 3)])
        assert p.lookup("N1") == [("N1", 3), ("N1", 1)]
        assert p.lookup("N9") == []

    def test_oversized_batch_is_split_across_chunks(self):
        p = make(chunk_rows=8)
        p.insert_rows([(0, i, 0.0) for i in range(50)])
        assert p.row_count == 50

    def test_invalid_chunk_rows(self):
        with pytest.raises(ValueError):
            make(chunk_rows=0)


class TestMVCC:
    def test_snapshot_isolation(self):
        parent = make()
        parent.insert_rows(rows_for(100))
        child = parent.snapshot(1)
        child.insert_row((5, 999, 9.9))
        assert len(child.lookup(5)) == len(parent.lookup(5)) + 1
        assert child.version == 1

    def test_linear_history_keeps_vectorized_scans(self):
        parent = make(chunk_rows=64)
        parent.insert_rows(rows_for(50))
        child = parent.snapshot(1)
        child.insert_rows(rows_for(30, seed=9))
        assert child.contiguous
        assert child.scan_columns(["k"]) is not None
        assert len(child.scan_columns(["k"])["k"]) == 80
        # The parent's vectorized scan must NOT see the child's rows.
        assert len(parent.scan_columns(["k"])["k"]) == 50

    def test_divergence_degrades_to_chain_scan(self):
        parent = make(chunk_rows=64)
        parent.insert_rows(rows_for(20))
        a = parent.snapshot(1)
        b = parent.snapshot(1)
        a.insert_rows([(100, 1, 1.0)])
        b.insert_rows([(200, 2, 2.0)])  # lands after a's row: non-contiguous
        assert not b.contiguous
        assert b.scan_columns(["k"]) is None  # vectorized path refused
        rows = sorted(b.iter_rows())
        assert (200, 2, 2.0) in rows and (100, 1, 1.0) not in rows

    def test_divergent_lookups_still_isolated(self):
        parent = make(chunk_rows=64)
        parent.insert_rows(rows_for(20))
        a = parent.snapshot(1)
        b = parent.snapshot(1)
        a.insert_rows([(7, 111, 1.0)])
        b.insert_rows([(7, 222, 2.0)])
        assert [r[1] for r in a.lookup(7)][0] == 111
        assert [r[1] for r in b.lookup(7)][0] == 222


class TestAccounting:
    def test_storage_and_index_bytes(self):
        p = make(chunk_rows=128)
        p.insert_rows(rows_for(300))
        assert p.storage_bytes() > 0
        assert p.index_bytes() > 0
        assert p.nbytes == p.storage_bytes()
