"""ReplayLog and block-manager machinery not covered elsewhere."""

import pytest

from repro.config import Config
from repro.engine.block_manager import BlockManager, BlockManagerMaster
from repro.engine.context import EngineContext
from repro.engine.replay import ReplayLog


class TestReplayLog:
    def test_append_and_get(self):
        log = ReplayLog()
        rec = log.append(1, [(1, 2), (3, 4)])
        assert rec.record_id == 0
        assert rec.version == 1
        assert log.get(0).rows == ((1, 2), (3, 4))

    def test_divergent_versions_allowed(self):
        """Listing 2: two children of one parent share a version number."""
        log = ReplayLog()
        a = log.append(1, [(1,)])
        b = log.append(1, [(2,)])
        assert a.record_id != b.record_id
        assert len(log) == 2

    def test_records_are_immutable_snapshots(self):
        log = ReplayLog()
        rows = [(1,)]
        rec = log.append(1, rows)
        rows.append((2,))  # caller mutates their list afterwards
        assert rec.rows == ((1,),)

    def test_records_listing(self):
        log = ReplayLog()
        log.append(1, [])
        log.append(2, [(5,)])
        assert [r.version for r in log.records()] == [1, 2]


class TestBlockManager:
    def test_put_get_remove(self):
        bm = BlockManager("e1")
        bm.put((1, 0), "value")
        assert bm.get((1, 0)) == "value"
        assert bm.contains((1, 0))
        bm.remove((1, 0))
        assert bm.get((1, 0)) is None

    def test_clear(self):
        bm = BlockManager("e1")
        bm.put((1, 0), "a")
        bm.put((2, 1), "b")
        bm.clear()
        assert bm.block_ids() == []


class TestBlockManagerMaster:
    def test_register_and_locations(self):
        master = BlockManagerMaster()
        master.register((1, 0), "e1")
        master.register((1, 0), "e2")
        master.register((1, 0), "e1")  # idempotent
        assert master.locations((1, 0)) == ["e1", "e2"]

    def test_remove_executor_reports_lost_blocks(self):
        master = BlockManagerMaster()
        master.register((1, 0), "e1")
        master.register((1, 1), "e1")
        master.register((1, 1), "e2")
        lost = master.remove_executor("e1")
        assert lost == [(1, 0)]  # (1,1) still on e2
        assert master.locations((1, 1)) == ["e2"]

    def test_remove_rdd_and_block(self):
        master = BlockManagerMaster()
        master.register((7, 0), "e1")
        master.register((7, 1), "e1")
        master.register((8, 0), "e1")
        master.remove_rdd_block((7, 0))
        assert master.locations((7, 0)) == []
        master.remove_rdd(7)
        assert master.locations((7, 1)) == []
        assert master.locations((8, 0)) == ["e1"]


class TestContextBlockOps:
    def test_invalidate_block_everywhere(self):
        ctx = EngineContext(config=Config(default_parallelism=2, shuffle_partitions=2))
        rdd = ctx.parallelize(range(10), 2).cache()
        rdd.collect()
        block = (rdd.rdd_id, 0)
        holders = ctx.block_manager_master.locations(block)
        assert holders
        ctx.invalidate_block(block)
        assert ctx.block_manager_master.locations(block) == []
        for runtime in ctx.executors.values():
            assert not runtime.block_manager.contains(block)
        # Recomputation still works after invalidation.
        assert sorted(rdd.collect()) == list(range(10))

    def test_remote_block_read_accounts_bytes(self):
        ctx = EngineContext(config=Config(default_parallelism=1, shuffle_partitions=1))
        rdd = ctx.parallelize(["x" * 1000] * 50, 1).cache()
        rdd.collect()
        [holder] = ctx.block_manager_master.locations((rdd.rdd_id, 0))
        # Force the next task onto a different machine than the holder.
        holder_machine = ctx.topology.machine_of(holder)
        for e in ctx.alive_executor_ids():
            if ctx.topology.machine_of(e) == holder_machine and e != holder:
                ctx.kill_executor(e)
        before = ctx.metrics.summary()
        rdd.collect()  # some tasks read the block remotely
        after = ctx.metrics.summary()
        assert after["tasks"] > before["tasks"]
