"""IndexedPartition: lookups vs a dict model, chains, MVCC snapshots,
string-key hashing, batch overflow, memory accounting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexed.partition import IndexedPartition
from repro.sql.types import DOUBLE, LONG, STRING, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))
STR_SCHEMA = Schema.of(("tail", STRING), ("x", LONG))


def make_partition(schema=EDGE_SCHEMA, key="src", batch_size=1024, **kw) -> IndexedPartition:
    return IndexedPartition(schema, key, batch_size=batch_size, **kw)


class TestInsertLookup:
    def test_single_row(self):
        p = make_partition()
        p.insert_row((1, 2, 0.5))
        assert p.lookup(1) == [(1, 2, 0.5)]
        assert p.row_count == 1

    def test_missing_key_empty(self):
        p = make_partition()
        assert p.lookup(99) == []

    def test_duplicate_keys_newest_first(self):
        p = make_partition()
        p.insert_row((1, 10, 0.1))
        p.insert_row((1, 20, 0.2))
        p.insert_row((1, 30, 0.3))
        assert p.lookup(1) == [(1, 30, 0.3), (1, 20, 0.2), (1, 10, 0.1)]

    def test_bulk_insert_matches_model(self):
        rng = random.Random(9)
        rows = [(rng.randrange(40), rng.randrange(100), rng.random()) for _ in range(2000)]
        p = make_partition()
        assert p.insert_rows(rows) == 2000
        model: dict = {}
        for r in rows:
            model.setdefault(r[0], []).append(r)
        for k, expect in model.items():
            assert p.lookup(k) == list(reversed(expect))
        assert p.lookup(41) == []
        assert p.row_count == 2000

    def test_iter_rows_complete(self):
        rows = [(i % 7, i, float(i)) for i in range(500)]
        p = make_partition()
        p.insert_rows(rows)
        assert sorted(p.iter_rows()) == sorted(rows)

    def test_contains_and_num_keys(self):
        p = make_partition()
        p.insert_rows([(1, 0, 0.0), (1, 1, 0.0), (2, 0, 0.0)])
        assert p.contains_key(1) and p.contains_key(2) and not p.contains_key(3)
        assert p.num_keys() == 2

    def test_null_non_key_fields(self):
        p = make_partition()
        p.insert_row((5, None, None))
        assert p.lookup(5) == [(5, None, None)]


class TestBatchOverflow:
    def test_rows_span_many_batches(self):
        p = make_partition(batch_size=128)  # tiny batches force spills
        rows = [(i % 5, i, float(i)) for i in range(300)]
        p.insert_rows(rows)
        assert len(p.batches) > 5
        for k in range(5):
            assert len(p.lookup(k)) == 60

    def test_chain_crosses_batch_boundaries(self):
        p = make_partition(batch_size=128)
        p.insert_rows([(7, i, 0.0) for i in range(50)])
        got = p.lookup(7)
        assert [r[1] for r in got] == list(reversed(range(50)))

    def test_row_larger_than_batch_rejected(self):
        p = IndexedPartition(STR_SCHEMA, "tail", batch_size=32, max_row_size=1024)
        with pytest.raises(ValueError):
            p.insert_row(("x" * 200, 1))


class TestStringKeys:
    def test_string_lookup(self):
        p = IndexedPartition(STR_SCHEMA, "tail")
        p.insert_rows([("N100", 1), ("N200", 2), ("N100", 3)])
        assert p.lookup("N100") == [("N100", 3), ("N100", 1)]
        assert p.lookup("N300") == []

    def test_hash_collision_verified(self):
        """Two strings colliding in hash32 must not cross-contaminate."""
        from repro.utils.hashing import hash32

        # Find two colliding short strings (bounded search, ~50k tries).
        seen: dict[int, str] = {}
        pair = None
        i = 0
        while pair is None and i < 300_000:
            s = f"k{i}"
            h = hash32(s)
            if h in seen:
                pair = (seen[h], s)
            seen[h] = s
            i += 1
        if pair is None:
            pytest.skip("no 32-bit string collision found in bounded search")
        a, b = pair
        p = IndexedPartition(STR_SCHEMA, "tail")
        p.insert_row((a, 1))
        p.insert_row((b, 2))
        assert p.lookup(a) == [(a, 1)]
        assert p.lookup(b) == [(b, 2)]

    def test_unhashed_string_keys_mode(self):
        p = IndexedPartition(STR_SCHEMA, "tail", hash_string_keys=False)
        p.insert_rows([("N1", 1), ("N1", 2)])
        assert p.lookup("N1") == [("N1", 2), ("N1", 1)]


class TestSnapshotMVCC:
    def test_snapshot_isolation_both_directions(self):
        parent = make_partition()
        parent.insert_rows([(1, 0, 0.0), (2, 0, 0.0)])
        child = parent.snapshot(1)
        child.insert_row((1, 99, 9.9))
        assert len(child.lookup(1)) == 2
        assert len(parent.lookup(1)) == 1  # parent untouched
        assert child.version == 1 and parent.version == 0

    def test_divergent_children_share_parent_state(self):
        parent = make_partition()
        parent.insert_rows([(k, 0, 0.0) for k in range(20)])
        a = parent.snapshot(1)
        b = parent.snapshot(1)
        a.insert_row((5, 100, 1.0))
        b.insert_row((5, 200, 2.0))
        assert [r[1] for r in a.lookup(5)] == [100, 0]
        assert [r[1] for r in b.lookup(5)] == [200, 0]
        assert [r[1] for r in parent.lookup(5)] == [0]

    def test_snapshot_shares_batches(self):
        parent = make_partition()
        parent.insert_rows([(1, i, 0.0) for i in range(100)])
        child = parent.snapshot(1)
        assert all(a is b for a, b in zip(parent.batches, child.batches))

    def test_divergent_appends_into_shared_tail_batch(self):
        """Two children appending to the same shared tail batch reserve
        disjoint regions; each sees only its own rows."""
        parent = make_partition(batch_size=4096)
        parent.insert_rows([(1, 0, 0.0)])
        a = parent.snapshot(1)
        b = parent.snapshot(1)
        a.insert_rows([(2, i, 0.0) for i in range(10)])
        b.insert_rows([(3, i, 0.0) for i in range(10)])
        assert len(a.lookup(2)) == 10 and a.lookup(3) == []
        assert len(b.lookup(3)) == 10 and b.lookup(2) == []
        # Both wrote into the same physical tail batch.
        assert a.batches[0] is b.batches[0]

    def test_deep_version_chain(self):
        p = make_partition()
        p.insert_row((0, 0, 0.0))
        versions = [p]
        for v in range(1, 8):
            child = versions[-1].snapshot(v)
            child.insert_row((0, v, float(v)))
            versions.append(child)
        for v, part in enumerate(versions):
            assert len(part.lookup(0)) == v + 1

    def test_iter_rows_scoped_to_version(self):
        parent = make_partition()
        parent.insert_rows([(1, 1, 0.0), (2, 2, 0.0)])
        child = parent.snapshot(1)
        child.insert_row((3, 3, 0.0))
        assert len(list(parent.iter_rows())) == 2
        assert len(list(child.iter_rows())) == 3


class TestMemoryAccounting:
    def test_overhead_positive_and_bounded(self):
        p = make_partition(batch_size=64 * 1024)
        p.insert_rows([(i, i, float(i)) for i in range(2000)])
        assert p.index_bytes() > 0
        assert p.storage_bytes() > 0
        assert 0 < p.memory_overhead() < 100

    def test_storage_bytes_grow_with_rows(self):
        p = make_partition()
        p.insert_rows([(1, 1, 1.0)] * 10)
        small = p.storage_bytes()
        p.insert_rows([(1, 1, 1.0)] * 100)
        assert p.storage_bytes() > small

    def test_allocated_at_least_storage(self):
        p = make_partition()
        p.insert_rows([(i, i, 0.0) for i in range(100)])
        assert p.allocated_bytes() >= p.storage_bytes()


class TestPropertyVsModel:
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=-100, max_value=100),
                st.floats(allow_nan=False, width=32),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_lookup_matches_model(self, rows):
        p = make_partition(batch_size=512)
        p.insert_rows(rows)
        model: dict = {}
        for r in rows:
            model.setdefault(r[0], []).insert(0, r)
        for k in range(16):
            assert p.lookup(k) == model.get(k, [])
        assert sorted(p.iter_rows()) == sorted(rows)
