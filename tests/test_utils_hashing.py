"""Deterministic hashing: stability, distribution, vectorized agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.hashing import (
    hash32,
    hash64,
    hash_column,
    partition_column,
    partition_for,
)

scalar_keys = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
    st.booleans(),
    st.none(),
)


class TestHash64:
    def test_deterministic_across_calls(self):
        assert hash64("abc") == hash64("abc")
        assert hash64(12345) == hash64(12345)

    def test_known_types_differ(self):
        values = [0, 1, "0", "1", 0.5, True, None, b"x"]
        hashes = [hash64(v) for v in values]
        # bool True vs int 1 must differ (distinct hash domains).
        assert hash64(True) != hash64(1)
        assert len(set(hashes)) >= len(values) - 1

    def test_negative_zero_equals_zero(self):
        assert hash64(-0.0) == hash64(0.0)

    def test_tuple_keys(self):
        assert hash64((1, "a")) == hash64((1, "a"))
        assert hash64((1, "a")) != hash64(("a", 1))

    def test_unhashable_raises(self):
        with pytest.raises(TypeError):
            hash64([1, 2])

    @given(scalar_keys)
    def test_in_64bit_range(self, key):
        h = hash64(key)
        assert 0 <= h < 2**64

    @given(st.integers(min_value=0, max_value=2**31))
    def test_avalanche_adjacent_ints(self, x):
        # Adjacent keys should differ in many bits (mixer quality).
        a, b = hash64(x), hash64(x + 1)
        assert bin(a ^ b).count("1") > 8


class TestHash32:
    @given(scalar_keys)
    def test_in_32bit_range(self, key):
        assert 0 <= hash32(key) < 2**32

    def test_string_keys_stable(self):
        assert hash32("N12345") == hash32("N12345")


class TestPartitionFor:
    @given(scalar_keys, st.integers(min_value=1, max_value=64))
    def test_in_range(self, key, n):
        assert 0 <= partition_for(key, n) < n

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            partition_for(1, 0)

    def test_balance_over_int_keys(self):
        n = 8
        counts = [0] * n
        for k in range(8000):
            counts[partition_for(k, n)] += 1
        assert max(counts) < 1.25 * min(counts)


class TestVectorized:
    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_int_column_matches_scalar(self, keys):
        vec = hash_column(np.array(keys, dtype=np.int64))
        for k, h in zip(keys, vec.tolist()):
            assert h == hash64(k)

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30)
    def test_float_column_matches_scalar(self, keys):
        vec = hash_column(np.array(keys, dtype=np.float64))
        for k, h in zip(keys, vec.tolist()):
            assert h == hash64(k)

    def test_object_column_matches_scalar(self):
        keys = ["a", "bb", "ccc", ""]
        vec = hash_column(np.array(keys, dtype=object))
        assert [hash64(k) for k in keys] == vec.tolist()

    def test_partition_column_matches_partition_for(self):
        keys = np.arange(-500, 500, dtype=np.int64)
        parts = partition_column(keys, 7)
        for k, p in zip(keys.tolist(), parts.tolist()):
            assert p == partition_for(k, 7)
