"""Randomized query equivalence harness.

The strongest correctness property this system can offer: for *arbitrary*
queries, three executions must agree —

1. unoptimized plan over uncached data,
2. optimized plan over the columnar cache (vanilla Spark),
3. optimized plan over the Indexed DataFrame (indexed rules installed).

A seeded generator builds random query plans (filters with random
predicates, projections, equi-joins, aggregations, sorts/limits) through
the public DataFrame API; hypothesis drives the seeds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Config
from repro.sql.functions import avg, col, count, lit, max_, min_, sum_
from repro.sql.optimizer import Optimizer
from repro.sql.planner import Planner
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))
DIM_SCHEMA = Schema.of(("node", LONG), ("label", STRING))


def _norm(value):
    if isinstance(value, float):
        return round(value, 6)
    if value is None or isinstance(value, str):
        return value
    try:
        return int(value)
    except (TypeError, ValueError):  # pragma: no cover
        return value


def normalize(rows):
    return sorted(tuple(_norm(v) for v in row) for row in rows)


class QueryGenerator:
    """Builds one random query over (edges, dims) given a seeded RNG."""

    def __init__(self, rng: random.Random, keys: int) -> None:
        self.rng = rng
        self.keys = keys

    def predicate(self):
        rng = self.rng
        kind = rng.randrange(5)
        if kind == 0:
            return col("src") == rng.randrange(self.keys)
        if kind == 1:
            return col("w") > rng.random()
        if kind == 2:
            return (col("src") == rng.randrange(self.keys)) & (col("w") < rng.random())
        if kind == 3:
            return col("dst").isin(*[rng.randrange(self.keys) for _ in range(3)])
        return (col("src") > rng.randrange(self.keys)) | (col("w") >= rng.random())

    def build(self, edges_df, dims_df):
        rng = self.rng
        df = edges_df
        if rng.random() < 0.8:
            df = df.where(self.predicate())
        shape = rng.randrange(4)
        if shape == 0:  # projection
            return df.select("dst", (col("w") * 2).alias("w2"))
        if shape == 1:  # join with the dimension table
            joined = df.join(dims_df, on=("src", "node"))
            if rng.random() < 0.5:
                joined = joined.where(col("w") > rng.random())
            return joined.select("src", "label", "w")
        if shape == 2:  # aggregation
            return df.group_by("src").agg(
                count().alias("n"), sum_("w").alias("s"), max_("dst").alias("m")
            )
        # sort + limit (ordered by a unique-ish composite to be deterministic)
        return df.order_by("w", "dst", "src").limit(rng.randrange(1, 20))


@pytest.fixture(scope="module")
def data():
    rng = random.Random(99)
    keys = 30
    edges = [
        (rng.randrange(keys), rng.randrange(keys), round(rng.random(), 4))
        for _ in range(500)
    ]
    dims = [(k, f"label{k % 4}") for k in range(keys)]
    return edges, dims, keys


def run_unoptimized(session, plan):
    analyzed = session.analyzer.analyze(plan)
    return Planner(session).plan(analyzed).execute().collect()


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=25, deadline=None)
def test_three_way_equivalence(data, seed):
    edges, dims, keys = data
    session = Session(config=Config(default_parallelism=3, shuffle_partitions=3))
    edges_df = session.create_dataframe(edges, EDGE_SCHEMA, "edges")
    dims_df = session.create_dataframe(dims, DIM_SCHEMA, "dims").cache()

    vanilla = edges_df.cache()
    indexed = edges_df.create_index("src")

    def build(source_df):
        # Fresh RNG per build: all three executions must see the SAME query.
        return QueryGenerator(random.Random(seed), keys).build(source_df, dims_df)

    # 1. unoptimized over uncached rows
    baseline = normalize(run_unoptimized(session, build(edges_df).plan))
    # 2. optimized over the columnar cache
    cached = normalize(build(vanilla).collect_tuples())
    # 3. optimized over the Indexed DataFrame (indexed rules active)
    idx = normalize(build(indexed.to_df()).collect_tuples())

    # Sort+limit queries are only deterministic when the sort key is unique;
    # compare those by multiset of the *sorted prefix domain* instead.
    assert cached == baseline
    assert idx == baseline


MODES = ("sequential", "threads", "processes")

#: Satellite (a): at least 50 seeded random queries per scheduler mode.
DIFFERENTIAL_SEEDS = list(range(50))


@pytest.mark.parametrize("mode", MODES)
def test_differential_indexed_vs_vanilla_50_seeds(data, mode):
    """Fixed dataset, one index build, 50 generated queries: the indexed
    plans must agree with the columnar-cache plans under both scheduler
    modes (the threads run is what exercises the concurrent cTrie)."""
    edges, dims, keys = data
    session = Session(
        config=Config(default_parallelism=3, shuffle_partitions=3, scheduler_mode=mode)
    )
    edges_df = session.create_dataframe(edges, EDGE_SCHEMA, "edges")
    dims_df = session.create_dataframe(dims, DIM_SCHEMA, "dims").cache()
    vanilla = edges_df.cache()
    indexed = edges_df.create_index("src")

    mismatches = []
    for seed in DIFFERENTIAL_SEEDS:
        want = normalize(
            QueryGenerator(random.Random(seed), keys).build(vanilla, dims_df).collect_tuples()
        )
        got = normalize(
            QueryGenerator(random.Random(seed), keys)
            .build(indexed.to_df(), dims_df)
            .collect_tuples()
        )
        if got != want:
            mismatches.append(seed)
    assert mismatches == [], f"indexed != vanilla for seeds {mismatches} in {mode} mode"


@pytest.mark.parametrize("mode", MODES)
def test_differential_across_mvcc_versions(data, mode):
    """Appends are versioned (MVCC): every version must answer queries as if
    it were a fresh DataFrame over the concatenated rows, the parent must
    stay queryable after a child append, and both scheduler modes agree."""
    edges, dims, keys = data
    session = Session(
        config=Config(default_parallelism=3, shuffle_partitions=3, scheduler_mode=mode)
    )
    rng = random.Random(4242)
    base = edges[:300]
    batch1 = [
        (rng.randrange(keys), rng.randrange(keys), round(rng.random(), 4)) for _ in range(40)
    ]
    batch2 = [
        (rng.randrange(keys), rng.randrange(keys), round(rng.random(), 4)) for _ in range(25)
    ]
    dims_df = session.create_dataframe(dims, DIM_SCHEMA, "dims").cache()

    v0 = session.create_dataframe(base, EDGE_SCHEMA, "edges").create_index("src")
    v1 = v0.append_rows(batch1)
    v2 = v1.append_rows(batch2)
    assert (v0.version, v1.version, v2.version) == (0, 1, 2)

    versions = [(v0, base), (v1, base + batch1), (v2, base + batch1 + batch2)]
    for query_seed in (3, 17, 29, 58, 91):
        for idf, rows in versions:
            reference = session.create_dataframe(rows, EDGE_SCHEMA, "edges_ref").cache()
            want = normalize(
                QueryGenerator(random.Random(query_seed), keys)
                .build(reference, dims_df)
                .collect_tuples()
            )
            got = normalize(
                QueryGenerator(random.Random(query_seed), keys)
                .build(idf.to_df(), dims_df)
                .collect_tuples()
            )
            assert got == want, (
                f"version {idf.version} diverged on seed {query_seed} in {mode} mode"
            )
    # The parent is still intact after both child appends.
    assert normalize(v0.to_df().collect_tuples()) == normalize(base)


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=10, deadline=None)
def test_columnar_storage_equivalence(data, seed):
    """Same harness, footnote-2 columnar storage format."""
    edges, dims, keys = data
    session = Session(config=Config(default_parallelism=3, shuffle_partitions=3))
    edges_df = session.create_dataframe(edges, EDGE_SCHEMA, "edges")
    dims_df = session.create_dataframe(dims, DIM_SCHEMA, "dims").cache()
    vanilla = edges_df.cache()
    indexed = edges_df.create_index("src", storage_format="columnar")

    gen = QueryGenerator(random.Random(seed), keys)
    want = normalize(gen.build(vanilla, dims_df).collect_tuples())
    gen2 = QueryGenerator(random.Random(seed), keys)
    got = normalize(gen2.build(indexed.to_df(), dims_df).collect_tuples())
    assert got == want
