"""Physical operators directly: scan fusion, limits, sorts, estimates."""

import pytest

from repro.config import Config
from repro.sql.cache import CachedRelation
from repro.sql.functions import col, count
from repro.sql.logical import Filter, Project, Relation
from repro.sql.physical import (
    ColumnarScanExec,
    FilterExec,
    LimitExec,
    ProjectExec,
    RowSourceExec,
    SortExec,
    UnionExec,
    estimate_row_bytes,
)
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

SCHEMA = Schema.of(("id", LONG), ("name", STRING), ("v", DOUBLE))
ROWS = [(i, f"n{i % 3}", i * 0.5) for i in range(60)]


@pytest.fixture()
def session():
    return Session(config=Config(default_parallelism=3, shuffle_partitions=3))


@pytest.fixture()
def cached(session):
    return CachedRelation(session.context, SCHEMA, ROWS, num_partitions=3).build()


class TestScanFusion:
    def test_filter_project_relation_fuses(self, session, cached):
        rel = Relation("t", SCHEMA, cached=cached)
        plan = Project([col("id"), col("v")], Filter(col("id") < 10, rel))
        physical = session.plan_physical(plan)
        assert isinstance(physical, ColumnarScanExec)
        assert physical.required == ["id", "v"]
        got = sorted(physical.execute().collect())
        assert got == [(i, i * 0.5) for i in range(10)]

    def test_filter_only_fuses(self, session, cached):
        rel = Relation("t", SCHEMA, cached=cached)
        physical = session.plan_physical(Filter(col("id") < 5, rel))
        assert isinstance(physical, ColumnarScanExec)
        assert physical.condition is not None
        assert len(physical.execute().collect()) == 5

    def test_computed_projection_does_not_fuse(self, session, cached):
        rel = Relation("t", SCHEMA, cached=cached)
        plan = Project([(col("id") * 2).alias("x")], rel)
        physical = session.plan_physical(plan)
        assert isinstance(physical, ProjectExec)
        assert sorted(physical.execute().collect()) == [(2 * i,) for i in range(60)]

    def test_bare_cached_relation_scans_columnar(self, session, cached):
        rel = Relation("t", SCHEMA, cached=cached)
        physical = session.plan_physical(rel)
        assert isinstance(physical, ColumnarScanExec)
        assert sorted(physical.execute().collect()) == sorted(ROWS)

    def test_uncached_relation_uses_row_source(self, session):
        rel = Relation("t", SCHEMA, rows=ROWS)
        physical = session.plan_physical(rel)
        assert isinstance(physical, RowSourceExec)


class TestOperatorEdgeCases:
    def test_limit_zero(self, session):
        rel = Relation("t", SCHEMA, rows=ROWS)
        physical = LimitExec(session, 0, RowSourceExec(session, rel))
        assert physical.execute().collect() == []

    def test_limit_larger_than_data(self, session):
        rel = Relation("t", SCHEMA, rows=ROWS[:3])
        physical = LimitExec(session, 100, RowSourceExec(session, rel))
        assert len(physical.execute().collect()) == 3

    def test_sort_multi_key_mixed_direction(self, session):
        from repro.sql.analysis import resolve_expression

        rel = Relation("t", SCHEMA, rows=ROWS)
        child = RowSourceExec(session, rel)
        keys = [
            (resolve_expression(col("name"), SCHEMA), True),
            (resolve_expression(col("id"), SCHEMA), False),
        ]
        out = SortExec(session, keys, child).execute().collect()
        assert out == sorted(ROWS, key=lambda r: (r[1], -r[0]))

    def test_sort_empty(self, session):
        rel = Relation("t", SCHEMA, rows=[])
        physical = SortExec(session, [], RowSourceExec(session, rel))
        assert physical.execute().collect() == []

    def test_union_exec(self, session):
        a = RowSourceExec(session, Relation("a", SCHEMA, rows=ROWS[:5]))
        b = RowSourceExec(session, Relation("b", SCHEMA, rows=ROWS[5:9]))
        u = UnionExec(session, a, b)
        assert len(u.execute().collect()) == 9
        assert u.estimated_rows() == 9

    def test_filter_exec_row_path(self, session):
        from repro.sql.analysis import resolve_expression

        rel = Relation("t", SCHEMA, rows=ROWS)
        cond = resolve_expression(col("v") > 10.0, SCHEMA)
        physical = FilterExec(session, cond, RowSourceExec(session, rel))
        got = physical.execute().collect()
        assert got == [r for r in ROWS if r[2] > 10.0]

    def test_tree_string_renders(self, session, cached):
        rel = Relation("t", SCHEMA, cached=cached)
        physical = session.plan_physical(Filter(col("id") < 5, rel))
        assert "ColumnarScan" in physical.tree_string()


class TestEstimates:
    def test_row_bytes_counts_strings_wider(self):
        narrow = Schema.of(("a", LONG))
        wide = Schema.of(("a", LONG), ("s", STRING))
        assert estimate_row_bytes(wide) > estimate_row_bytes(narrow)

    def test_scan_estimates_shrink_with_filter(self, session, cached):
        bare = ColumnarScanExec(session, cached)
        filtered = ColumnarScanExec(session, cached, condition=col("id") < 5)
        assert filtered.estimated_rows() < bare.estimated_rows()


class TestPhaseAccounting:
    def test_columnar_scan_records_phase(self, session, cached):
        rel = Relation("t", SCHEMA, cached=cached)
        session.context.metrics.reset()
        session.plan_physical(Filter(col("id") < 5, rel)).execute().collect()
        phases = [
            t.phases
            for s in session.context.metrics.stages.values()
            for t in s.tasks
        ]
        assert any("scan" in p for p in phases)
