"""End-to-end data integrity (DESIGN.md §16).

Covers the whole detect → quarantine → repair pipeline:

* :class:`~repro.integrity.ChecksumMixin` prefix marks on row batches —
  anchoring, incremental extension, MVCC mark invalidation, pruning, and
  the global enable toggle;
* every trust boundary raising :class:`~repro.integrity.CorruptBlockError`
  on damaged bytes: spill fault-in, kernel-worker segment attach, staged
  shuffle-bucket fetch, snapshot pin;
* seeded corruption chaos (``chaos_corrupt_*`` knobs) driving the full
  recovery loop — quarantine everywhere, lineage rebuild or map
  recompute, ``corruption_detected_total == corruption_repaired_total``,
  and zero wrong answers;
* the serve-tier scrubber finding and repairing damage in pinned
  snapshots (single server and sharded router);
* ``Config.validate()`` rejecting out-of-range knobs;
* shm-segment leak audits after corruption-chaos runs.
"""

from __future__ import annotations

import gc
import glob
import zlib

import pytest

from repro.config import Config
from repro.indexed.out_of_core import SpillableRowBatch
from repro.indexed.partition import IndexedPartition
from repro.indexed.row_batch import RowBatch
from repro.indexed.shared_batches import (
    SEGMENT_PREFIX,
    SharedRowBatch,
    owned_segment_count,
    sweep_owned_segments,
)
from repro.integrity import (
    CORRUPTION_MODES,
    ChecksumMixin,
    CorruptBlockError,
    audit_partition,
    batch_matches,
    checkpoint_partition,
    corrupt_buffer,
    corrupt_file,
    integrity_enabled,
    set_integrity_enabled,
    value_contains_corruption,
)
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, Schema

EDGE = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))


def make_rows(n=3000, keys=50):
    return [(i % keys, i, float(i)) for i in range(n)]


def shm_entries() -> set[str]:
    return {p.rsplit("/", 1)[1] for p in glob.glob("/dev/shm/repro-*")}


def counters(session):
    reg = session.context.registry
    return (
        reg.counter_total("corruption_detected_total"),
        reg.counter_total("corruption_repaired_total"),
    )


# ---------------------------------------------------------------------------
# ChecksumMixin: marks, verification, MVCC invalidation
# ---------------------------------------------------------------------------


class TestChecksumMixin:
    def test_checkpoint_and_verify_roundtrip(self):
        batch = RowBatch(256)
        batch.append(b"hello")
        crc = batch.checkpoint()
        assert crc == zlib.crc32(b"hello")
        assert batch.verify() is True
        # Appends past the mark don't disturb it; a new mark extends
        # incrementally from the old one.
        batch.append(b"world")
        assert batch.verify(5) is True
        assert batch.checkpoint() == zlib.crc32(b"helloworld")

    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_verify_detects_every_damage_mode(self, mode):
        batch = RowBatch(8192)
        batch.append(b"x" * 6000)
        batch.checkpoint()
        corrupt_buffer(batch.buf, 6000, mode)
        with pytest.raises(CorruptBlockError) as err:
            batch.verify(where="unit")
        assert err.value.where == "unit"
        assert err.value.expected != err.value.actual

    def test_unanchored_batch_verifies_vacuously(self):
        batch = RowBatch(64)
        batch.append(b"data")
        assert batch.verify() is False  # no mark yet: nothing to check

    def test_mvcc_write_drops_stale_marks(self):
        # A sibling completing a pre-mark reservation rewrites bytes under
        # an existing mark; the mark must go rather than false-positive.
        batch = RowBatch(256)
        batch.append(b"abcdef")
        batch.checkpoint()
        batch.write(2, b"ZZ")
        assert batch.verify() is False  # mark dropped, not a mismatch
        assert batch.checkpoint() == zlib.crc32(b"abZZef")

    def test_marks_bounded(self):
        batch = RowBatch(4096)
        for i in range(80):
            batch.append(b"x" * 8)
            batch.checkpoint()
        assert len(batch._crc_marks) <= ChecksumMixin._MAX_MARKS
        assert batch.verify() is True

    def test_global_toggle_disables_anchoring(self):
        batch = RowBatch(64)
        batch.append(b"data")
        set_integrity_enabled(False)
        try:
            assert not integrity_enabled()
            assert batch.checkpoint() is None
            assert batch.verify() is False
        finally:
            set_integrity_enabled(True)
        assert batch.checkpoint() is not None

    def test_shared_batch_handle_carries_checksum(self):
        batch = SharedRowBatch(256)
        batch.append(b"payload")
        handle = batch.handle()
        assert handle.checksum == zlib.crc32(b"payload")
        batch.release()

    def test_partition_helpers_anchor_and_audit(self):
        part = IndexedPartition(EDGE, "src", batch_size=2048, max_row_size=256, version=0)
        part.insert_rows(make_rows(200, keys=10))
        anchored = checkpoint_partition(part)
        assert anchored > 0
        verified, fresh = audit_partition(part)
        assert verified == anchored and fresh == 0
        # Damage one anchored batch: the audit must throw.
        for batch, wm in zip(part.batches, part.visible_watermarks()):
            if wm:
                corrupt_buffer(batch.buf, wm, "bit_flip")
                break
        with pytest.raises(CorruptBlockError):
            audit_partition(part, where="scrub")

    def test_exception_matching_helpers(self):
        batch = SharedRowBatch(128)
        batch.append(b"abc")
        exc = CorruptBlockError("t", segment=batch.name, batch=None)
        assert batch_matches(batch, exc)
        part = IndexedPartition(EDGE, "src", batch_size=2048, max_row_size=256, version=0)
        part.batches.append(batch)
        assert value_contains_corruption([part], exc)
        assert not value_contains_corruption([1, 2, 3], exc)
        batch.release()


# ---------------------------------------------------------------------------
# Spill fault-in boundary
# ---------------------------------------------------------------------------


class TestSpillBoundary:
    def test_clean_spill_roundtrip(self, tmp_path):
        batch = SpillableRowBatch(256, spill_dir=str(tmp_path))
        batch.append(b"hello world")
        batch.spill()
        assert bytes(batch.buf[:11]) == b"hello world"  # fault-in verifies

    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_damaged_spill_file_detected(self, tmp_path, mode):
        batch = SpillableRowBatch(8192, spill_dir=str(tmp_path))
        batch.append(b"y" * 5000)
        batch.spill()
        corrupt_file(batch._path, 5000, mode)
        with pytest.raises(CorruptBlockError) as err:
            batch.ensure_resident()
        assert err.value.where == "spill_fault_in"
        assert not batch.resident  # stays spilled: retryable, not poisoned

    def test_chaos_hook_damages_at_write_time(self, tmp_path):
        batch = SpillableRowBatch(8192, spill_dir=str(tmp_path))
        batch.append(b"z" * 4000)
        batch.chaos_corruption = lambda path: "garble_header"
        batch.spill()
        with pytest.raises(CorruptBlockError):
            batch.ensure_resident()


# ---------------------------------------------------------------------------
# End-to-end chaos: spill / proc attach / shuffle fetch
# ---------------------------------------------------------------------------


class TestCorruptionChaosEndToEnd:
    def test_spill_corruption_heals_via_lineage(self, tmp_path):
        rows = make_rows()
        s = Session(config=Config(
            default_parallelism=2, shuffle_partitions=2, spill_dir=str(tmp_path),
            row_batch_size=4096, chaos_seed=11, chaos_corrupt_spill_prob=1.0,
            task_retry_backoff=0.0,
        ))
        idf = s.create_dataframe(rows, EDGE, "e").create_index("src").cache_index()
        idf.spill_index()
        assert sorted(idf.lookup_tuples(7)) == sorted(t for t in rows if t[0] == 7)
        assert sorted(map(tuple, idf.collect())) == sorted(rows)
        detected, repaired = counters(s)
        assert detected > 0
        assert detected == repaired
        kinds = s.context.metrics.recovery_summary()
        assert "chaos_spill_corruption" in kinds
        assert "corrupt_block_quarantined" in kinds
        assert "corrupt_block_rebuilt" in kinds
        assert s.context.faults.corruptions

    def test_shm_dispatch_corruption_heals_via_lineage(self):
        rows = make_rows(4000, keys=40)
        s = Session(config=Config(
            scheduler_mode="processes", default_parallelism=4, shuffle_partitions=4,
            proc_offload_min_bytes=0, proc_offload_min_keys=1,
            small_stage_inline_threshold=0, small_stage_inline_rows=0,
            chaos_seed=3, chaos_corrupt_shm_prob=1.0, task_retry_backoff=0.0,
        ))
        idf = s.create_dataframe(rows, EDGE, "edges").create_index("src")
        assert sorted(idf.to_df().collect_tuples()) == sorted(rows)
        detected, repaired = counters(s)
        assert detected > 0
        assert detected == repaired
        kinds = s.context.metrics.recovery_summary()
        assert "chaos_shm_corruption" in kinds
        assert "corrupt_block_rebuilt" in kinds

    def test_fetch_corruption_heals_via_map_recompute(self):
        from collections import Counter

        rows = make_rows(4000, keys=17)
        s = Session(config=Config(
            scheduler_mode="processes", default_parallelism=4, shuffle_partitions=4,
            shuffle_shm_bytes=1, chaos_seed=5, chaos_corrupt_fetch_prob=1.0,
            task_retry_backoff=0.0,
        ))
        ctx = s.context
        counts = sorted(
            ctx.parallelize(rows, 4)
            .map(lambda r: (r[0], 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert counts == sorted(Counter(r[0] for r in rows).items())
        detected, repaired = counters(s)
        assert detected > 0
        assert detected == repaired
        kinds = ctx.metrics.recovery_summary()
        assert "chaos_fetch_corruption" in kinds
        assert "corrupt_shuffle_payload" in kinds
        assert "corrupt_map_recomputed" in kinds


# ---------------------------------------------------------------------------
# Serve tier: pin-time audit + scrubber
# ---------------------------------------------------------------------------


def _corrupt_pinned(part) -> bool:
    for batch, wm in zip(part.batches, part.visible_watermarks()):
        if wm:
            corrupt_buffer(batch.buf, wm, "bit_flip")
            return True
    return False


class TestScrubber:
    def _publish(self, mode="sequential"):
        from repro.serve.server import QueryServer

        s = Session(config=Config(
            default_parallelism=4, shuffle_partitions=4,
            scheduler_mode=mode, task_retry_backoff=0.0,
        ))
        rows = make_rows(4000, keys=40)
        idf = s.create_dataframe(rows, EDGE, "edges").create_index("src").cache_index()
        server = QueryServer(s)
        server.publish("v", idf)
        return s, rows, server

    def test_scrub_finds_and_repairs_pinned_snapshot(self):
        from repro.serve.scrub import SnapshotScrubber

        s, rows, server = self._publish()
        assert _corrupt_pinned(server.pinned("v").partitions[0])
        stats = SnapshotScrubber(server).scrub_once()
        assert stats["found"] == 1 and stats["repaired"] == 1
        detected, repaired = counters(s)
        assert detected == repaired > 0
        assert sorted(server.pinned("v").lookup(7)) == sorted(
            t for t in rows if t[0] == 7
        )
        kinds = s.context.metrics.recovery_summary()
        assert "scrub_corruption_found" in kinds
        assert "scrub_corruption_repaired" in kinds
        assert s.context.tracer.integrity_errors() == []

    def test_clean_scrub_cycle_verifies_without_repair(self):
        from repro.serve.scrub import SnapshotScrubber

        s, _rows, server = self._publish()
        scrub = SnapshotScrubber(server)
        first = scrub.scrub_once()
        second = scrub.scrub_once()
        assert first["found"] == second["found"] == 0
        assert second["verified"] == second["partitions"]
        assert s.context.registry.counter_total("scrub_cycles_total") == 2

    def test_background_scrubber_lifecycle(self):
        from repro.serve.scrub import SnapshotScrubber

        s, _rows, server = self._publish()
        with SnapshotScrubber(server, interval=0.01) as scrub:
            assert _corrupt_pinned(server.pinned("v").partitions[1])
            import time

            deadline = time.time() + 5.0
            while time.time() < deadline:
                if s.context.registry.counter_total("scrub_cycles_total") >= 2:
                    break
                time.sleep(0.01)
        detected, repaired = counters(s)
        assert detected == repaired == 1
        assert scrub._thread is None  # stopped cleanly

    def test_router_scrub_repairs_corrupted_replica(self):
        from repro.serve.router import RouterConfig, ShardRouter
        from repro.serve.scrub import SnapshotScrubber

        s = Session(config=Config(
            default_parallelism=4, shuffle_partitions=4, task_retry_backoff=0.0,
        ))
        rows = make_rows(4000, keys=40)
        idf = s.create_dataframe(rows, EDGE, "edges").create_index("src").cache_index()
        with ShardRouter(s, 3, RouterConfig(replication_factor=2)) as router:
            router.publish("v", idf)
            state = router.pinned("v")
            owner = state.table.replicas(0)[0]
            assert _corrupt_pinned(router.shards[owner].snapshot("v").parts[0])
            stats = SnapshotScrubber(router).scrub_once()
            assert stats["found"] == 1 and stats["repaired"] == 1
            detected, repaired = counters(s)
            assert detected == repaired > 0
            # Replication factor restored with verified bytes; the routed
            # answer is complete and correct.
            assert len(state.table.replicas(0)) >= 2
            res = router.query("SELECT src, dst, w FROM v WHERE src = 7")
            assert not res.degraded
            assert sorted(map(tuple, res.rows)) == sorted(t for t in rows if t[0] == 7)

    def test_pin_time_audit_rejects_corrupt_cache(self):
        from repro.serve.snapshot import PinnedSnapshot

        s = Session(config=Config(default_parallelism=2, shuffle_partitions=2))
        rows = make_rows(2000, keys=20)
        idf = s.create_dataframe(rows, EDGE, "edges").create_index("src").cache_index()
        first = PinnedSnapshot.pin(idf)  # anchors every partition
        assert _corrupt_pinned(first.partitions[0])
        repinned = PinnedSnapshot.pin(idf)  # detects, quarantines, rebuilds
        detected, repaired = counters(s)
        assert detected == repaired == 1
        assert sorted(repinned.lookup(7)) == sorted(t for t in rows if t[0] == 7)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfigValidate:
    def test_valid_config_returns_self(self):
        cfg = Config()
        assert cfg.validate() is cfg

    @pytest.mark.parametrize("field_name", [
        "chaos_corrupt_shm_prob",
        "chaos_corrupt_spill_prob",
        "chaos_corrupt_fetch_prob",
        "chaos_task_failure_prob",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_out_of_range_probability_rejected(self, field_name, bad):
        with pytest.raises(ValueError, match=field_name):
            Config(**{field_name: bad}).validate()

    def test_bad_enum_rejected(self):
        with pytest.raises(ValueError, match="scheduler_mode"):
            Config(scheduler_mode="quantum").validate()

    def test_bad_positive_int_rejected(self):
        with pytest.raises(ValueError, match="row_batch_size"):
            Config(row_batch_size=0).validate()

    def test_negative_scrub_interval_rejected(self):
        with pytest.raises(ValueError, match="scrub_interval"):
            Config(scrub_interval=-1.0).validate()

    def test_all_problems_reported_together(self):
        with pytest.raises(ValueError) as err:
            Config(chaos_corrupt_shm_prob=2.0, scheduler_mode="quantum").validate()
        assert "chaos_corrupt_shm_prob" in str(err.value)
        assert "scheduler_mode" in str(err.value)

    def test_session_rejects_invalid_config_eagerly(self):
        with pytest.raises(ValueError, match="chaos_corrupt_fetch_prob"):
            Session(config=Config(chaos_corrupt_fetch_prob=7.0))


# ---------------------------------------------------------------------------
# Leak audits: no orphan shm segments after corruption chaos
# ---------------------------------------------------------------------------


class TestSegmentLeakAudit:
    def test_no_segment_leak_after_corruption_and_worker_kill_chaos(self):
        sweep_owned_segments()
        before = shm_entries()
        rows = make_rows(4000, keys=40)
        s = Session(config=Config(
            scheduler_mode="processes", default_parallelism=4, shuffle_partitions=4,
            proc_offload_min_bytes=0, proc_offload_min_keys=1,
            small_stage_inline_threshold=0, small_stage_inline_rows=0,
            chaos_seed=13, chaos_corrupt_shm_prob=0.5, chaos_proc_kill_prob=0.2,
            executor_replacement=True, task_retry_backoff=0.0,
        ))
        idf = s.create_dataframe(rows, EDGE, "edges").create_index("src")
        assert sorted(idf.to_df().collect_tuples()) == sorted(rows)
        del idf, s
        gc.collect()
        sweep_owned_segments()
        assert owned_segment_count() == 0
        assert shm_entries() <= before

    def test_no_shuffle_bucket_leak_after_fetch_corruption_retries(self):
        sweep_owned_segments()
        before = {e for e in shm_entries() if e.startswith("repro-shuf-")}
        rows = make_rows(4000, keys=17)
        s = Session(config=Config(
            scheduler_mode="processes", default_parallelism=4, shuffle_partitions=4,
            shuffle_shm_bytes=1, chaos_seed=5, chaos_corrupt_fetch_prob=1.0,
            task_retry_backoff=0.0,
        ))
        ctx = s.context
        result = (
            ctx.parallelize(rows, 4)
            .map(lambda r: (r[0], 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert result  # stage retried through corrupt buckets and finished
        assert ctx.registry.counter_total("corruption_detected_total") > 0
        del result, ctx, s
        gc.collect()
        sweep_owned_segments()
        after = {e for e in shm_entries() if e.startswith("repro-shuf-")}
        assert after <= before
        assert owned_segment_count() == 0

    def test_batch_segment_prefix_unchanged(self):
        # The leak audits grep /dev/shm by prefix; pin the contract.
        assert SEGMENT_PREFIX.startswith("repro-")
