"""SQL parser: tokenization, plan shapes, error handling."""

import pytest

from repro.sql.catalog import Catalog
from repro.sql.logical import Aggregate, Filter, Join, Limit, Project, Relation, Sort
from repro.sql.parser import SQLParseError, parse_query, tokenize
from repro.sql.types import DOUBLE, LONG, STRING, Schema


@pytest.fixture()
def catalog() -> Catalog:
    c = Catalog()
    c.register(
        "t", Relation("t", Schema.of(("id", LONG), ("name", STRING), ("v", DOUBLE)), rows=[])
    )
    c.register("u", Relation("u", Schema.of(("uid", LONG), ("city", STRING)), rows=[]))
    return c


class TestTokenizer:
    def test_basic(self):
        toks = tokenize("SELECT a FROM t WHERE x = 1")
        kinds = [k for k, _ in toks]
        assert kinds == ["kw", "ident", "kw", "ident", "kw", "ident", "op", "number", "eof"]

    def test_strings_with_escapes(self):
        toks = tokenize("SELECT 'it''s'")
        assert ("string", "'it''s'") in toks

    def test_case_insensitive_keywords(self):
        assert tokenize("select")[0] == ("kw", "select")
        assert tokenize("SeLeCt")[0] == ("kw", "select")

    def test_unknown_char(self):
        with pytest.raises(SQLParseError):
            tokenize("SELECT @")


class TestQueryShapes:
    def test_select_star(self, catalog):
        plan = parse_query("SELECT * FROM t", catalog)
        assert isinstance(plan, Relation)

    def test_projection(self, catalog):
        plan = parse_query("SELECT id, name FROM t", catalog)
        assert isinstance(plan, Project)
        assert plan.schema.names() == ["id", "name"]

    def test_alias(self, catalog):
        plan = parse_query("SELECT id AS key FROM t", catalog)
        assert plan.schema.names() == ["key"]

    def test_where(self, catalog):
        plan = parse_query("SELECT * FROM t WHERE id = 3", catalog)
        assert isinstance(plan, Filter)

    def test_where_precedence(self, catalog):
        plan = parse_query(
            "SELECT * FROM t WHERE id > 1 AND id < 5 OR name = 'x'", catalog
        )
        # OR binds loosest: top node is OR.
        from repro.sql.expressions import Or

        assert isinstance(plan.condition, Or)

    def test_arithmetic_expression(self, catalog):
        plan = parse_query("SELECT id * 2 + 1 AS two FROM t", catalog)
        assert plan.schema.names() == ["two"]

    def test_unary_minus(self, catalog):
        plan = parse_query("SELECT * FROM t WHERE id > -5", catalog)
        assert isinstance(plan, Filter)

    def test_in_and_is_null(self, catalog):
        parse_query("SELECT * FROM t WHERE id IN (1, 2, 3)", catalog)
        parse_query("SELECT * FROM t WHERE name IS NOT NULL", catalog)

    def test_join(self, catalog):
        plan = parse_query("SELECT * FROM t JOIN u ON id = uid", catalog)
        assert isinstance(plan, Join)
        assert plan.how == "inner"

    def test_left_join(self, catalog):
        plan = parse_query("SELECT * FROM t LEFT JOIN u ON id = uid", catalog)
        assert plan.how == "left"

    def test_join_reversed_equality(self, catalog):
        plan = parse_query("SELECT * FROM t JOIN u ON uid = id", catalog)
        assert plan.left_keys[0].name == "id"
        assert plan.right_keys[0].name == "uid"

    def test_join_with_residual(self, catalog):
        plan = parse_query("SELECT * FROM t JOIN u ON id = uid AND v > 1", catalog)
        assert isinstance(plan, Join)
        assert plan.residual is not None

    def test_join_without_equality_rejected(self, catalog):
        with pytest.raises(SQLParseError):
            parse_query("SELECT * FROM t JOIN u ON v > 1", catalog)

    def test_qualified_columns_stripped(self, catalog):
        plan = parse_query("SELECT t.id FROM t", catalog)
        assert plan.schema.names() == ["id"]

    def test_table_alias(self, catalog):
        plan = parse_query("SELECT a.id FROM t a", catalog)
        assert plan.schema.names() == ["id"]
        plan = parse_query("SELECT a.id FROM t AS a", catalog)
        assert plan.schema.names() == ["id"]

    def test_group_by(self, catalog):
        plan = parse_query("SELECT name, count(*) AS n FROM t GROUP BY name", catalog)
        assert isinstance(plan, Aggregate)
        assert plan.schema.names() == ["name", "n"]

    def test_global_aggregate_without_group_by(self, catalog):
        plan = parse_query("SELECT sum(v) AS total FROM t", catalog)
        assert isinstance(plan, Aggregate)
        assert plan.group_exprs == []

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(SQLParseError):
            parse_query("SELECT name, id, count(*) FROM t GROUP BY name", catalog)

    def test_count_star_only_for_count(self, catalog):
        with pytest.raises(SQLParseError):
            parse_query("SELECT sum(*) FROM t", catalog)

    def test_order_limit(self, catalog):
        plan = parse_query("SELECT * FROM t ORDER BY v DESC, id LIMIT 5", catalog)
        assert isinstance(plan, Limit) and plan.n == 5
        assert isinstance(plan.child, Sort)
        assert plan.child.keys[0][1] is False  # DESC
        assert plan.child.keys[1][1] is True

    def test_distinct(self, catalog):
        plan = parse_query("SELECT DISTINCT name FROM t", catalog)
        assert isinstance(plan, Aggregate)

    def test_unknown_table(self, catalog):
        with pytest.raises(KeyError):
            parse_query("SELECT * FROM nope", catalog)

    def test_trailing_garbage(self, catalog):
        with pytest.raises(SQLParseError):
            parse_query("SELECT * FROM t extra nonsense,", catalog)

    def test_string_and_float_literals(self, catalog):
        parse_query("SELECT * FROM t WHERE name = 'abc' AND v > 1.25", catalog)


class TestRangePredicates:
    """BETWEEN / LIKE surface syntax (ordered-index range pushdown feeds
    on these shapes; bound inclusivity must survive parsing exactly)."""

    def test_between_desugars_to_inclusive_conjunction(self, catalog):
        from repro.sql.expressions import And, BinaryOp

        plan = parse_query("SELECT * FROM t WHERE id BETWEEN 3 AND 7", catalog)
        cond = plan.condition
        assert isinstance(cond, And)
        assert isinstance(cond.left, BinaryOp) and cond.left.op == ">="
        assert isinstance(cond.right, BinaryOp) and cond.right.op == "<="

    def test_between_binds_tighter_than_logical_and(self, catalog):
        from repro.sql.expressions import And

        plan = parse_query(
            "SELECT * FROM t WHERE id BETWEEN 1 AND 5 AND v > 2", catalog
        )
        cond = plan.condition
        # (id BETWEEN 1 AND 5) AND (v > 2): the BETWEEN's AND is consumed
        # by the BETWEEN, the second AND is the logical conjunction.
        assert isinstance(cond, And) and isinstance(cond.left, And)

    def test_not_between(self, catalog):
        from repro.sql.expressions import Not

        plan = parse_query("SELECT * FROM t WHERE id NOT BETWEEN 3 AND 7", catalog)
        assert isinstance(plan.condition, Not)

    def test_between_with_reversed_and_equal_bounds_parses(self, catalog):
        parse_query("SELECT * FROM t WHERE id BETWEEN 7 AND 3", catalog)
        parse_query("SELECT * FROM t WHERE id BETWEEN 5 AND 5", catalog)

    def test_like_produces_like_expression(self, catalog):
        from repro.sql.expressions import Like

        plan = parse_query("SELECT * FROM t WHERE name LIKE 'ab%'", catalog)
        assert isinstance(plan.condition, Like)
        assert plan.condition.prefix() == "ab"

    def test_not_like_is_negated(self, catalog):
        from repro.sql.expressions import Like

        plan = parse_query("SELECT * FROM t WHERE name NOT LIKE 'ab%'", catalog)
        assert isinstance(plan.condition, Like) and plan.condition.negated

    def test_like_pattern_with_escaped_quote(self, catalog):
        from repro.sql.expressions import Like

        plan = parse_query("SELECT * FROM t WHERE name LIKE 'it''s%'", catalog)
        assert isinstance(plan.condition, Like)
        assert plan.condition.pattern == "it's%"

    def test_like_requires_string_literal(self, catalog):
        with pytest.raises(SQLParseError):
            parse_query("SELECT * FROM t WHERE name LIKE 5", catalog)
        with pytest.raises(SQLParseError):
            parse_query("SELECT * FROM t WHERE name LIKE id", catalog)
