"""MVCC strategies: snapshot vs copy-on-write equivalence and cost gap.

Section III-E's design argument as executable checks: both strategies give
identical semantics; snapshots share storage, copy-on-write duplicates it.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexed.mvcc import (
    CopyOnWriteVersioning,
    SnapshotVersioning,
    incremental_bytes,
)
from repro.indexed.partition import IndexedPartition
from repro.sql.types import DOUBLE, LONG, Schema

SCHEMA = Schema.of(("k", LONG), ("v", LONG), ("w", DOUBLE))

STRATEGIES = [SnapshotVersioning(), CopyOnWriteVersioning()]


def base_partition(n=500, keys=40) -> IndexedPartition:
    p = IndexedPartition(SCHEMA, "k", batch_size=4096)
    p.insert_rows([(i % keys, i, float(i)) for i in range(n)])
    return p


class TestSemanticEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
    def test_child_sees_parent_data(self, strategy):
        parent = base_partition()
        child = strategy.new_version(parent, 1)
        for k in range(40):
            assert child.lookup(k) == parent.lookup(k)
        assert child.version == 1

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
    def test_child_writes_isolated_from_parent(self, strategy):
        parent = base_partition()
        before = len(parent.lookup(3))
        child = strategy.new_version(parent, 1)
        child.insert_row((3, 999, 9.9))
        assert len(child.lookup(3)) == before + 1
        assert len(parent.lookup(3)) == before

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
    def test_divergent_children(self, strategy):
        parent = base_partition()
        a = strategy.new_version(parent, 1)
        b = strategy.new_version(parent, 1)
        a.insert_row((100, 1, 1.0))
        b.insert_row((200, 2, 2.0))
        assert a.lookup(200) == [] and b.lookup(100) == []
        assert a.lookup(100) and b.lookup(200)

    @given(
        extra=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=10_000),
                st.floats(allow_nan=False, width=32),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_strategies_agree_after_appends(self, extra):
        parent = base_partition(n=200, keys=20)
        snap = SnapshotVersioning().new_version(parent, 1)
        cow = CopyOnWriteVersioning().new_version(parent, 1)
        snap.insert_rows(extra)
        cow.insert_rows(extra)
        for k in {r[0] for r in extra} | set(range(20)):
            assert snap.lookup(k) == cow.lookup(k)
        assert sorted(snap.iter_rows()) == sorted(cow.iter_rows())


class TestCostGap:
    def test_snapshot_shares_storage_cow_does_not(self):
        parent = base_partition(n=2000, keys=50)
        snap = SnapshotVersioning().new_version(parent, 1)
        cow = CopyOnWriteVersioning().new_version(parent, 1)
        assert incremental_bytes(parent, snap) == 0  # delta-only
        assert incremental_bytes(parent, cow) >= parent.allocated_bytes()

    def test_snapshot_is_much_faster(self):
        parent = base_partition(n=5000, keys=100)

        def timed(strategy):
            t0 = time.perf_counter()
            for _ in range(10):
                strategy.new_version(parent, 1)
            return time.perf_counter() - t0

        t_snap = timed(SnapshotVersioning())
        t_cow = timed(CopyOnWriteVersioning())
        assert t_snap * 5 < t_cow  # "large performance penalties"
