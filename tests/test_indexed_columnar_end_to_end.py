"""Columnar storage format end-to-end through the whole stack.

``df.create_index(col, storage_format="columnar")`` must behave exactly
like the row-wise default for every public operation (lookups, SQL, joins,
appends, fault tolerance) — the storage format is an implementation choice
(paper footnote 2), not a semantic one.
"""

import random

import pytest

from repro.config import Config
from repro.indexed.columnar_partition import ColumnarIndexedPartition
from repro.sql.functions import col
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, Schema

EDGE_SCHEMA = Schema.of(("src", LONG), ("dst", LONG), ("w", DOUBLE))


def make_rows(n=600, keys=50, seed=14):
    rng = random.Random(seed)
    return [(rng.randrange(keys), rng.randrange(keys), round(rng.random(), 4)) for _ in range(n)]


def _normalize(rows):
    # Columnar storage returns numpy scalar types; compare by value.
    return sorted((int(a), int(b), float(c)) for a, b, c in rows)


@pytest.fixture()
def session():
    return Session(config=Config(default_parallelism=4, shuffle_partitions=4))


@pytest.fixture()
def pair(session):
    rows = make_rows()
    df = session.create_dataframe(rows, EDGE_SCHEMA, "edges")
    row_idf = df.create_index("src").cache_index()
    col_idf = df.create_index("src", storage_format="columnar").cache_index()
    return rows, row_idf, col_idf


class TestFormatSelection:
    def test_partitions_are_columnar(self, pair):
        _, _, col_idf = pair
        parts = col_idf.session.context.run_job(
            col_idf.rdd, lambda it, _ctx: type(next(iter(it))).__name__
        )
        assert set(parts) == {"ColumnarIndexedPartition"}

    def test_config_level_default(self):
        session = Session(
            config=Config(
                default_parallelism=2, shuffle_partitions=2,
                index_storage_format="columnar",
            )
        )
        df = session.create_dataframe(make_rows(50), EDGE_SCHEMA, "e")
        idf = df.create_index("src").cache_index()
        assert idf.rdd.storage_format == "columnar"

    def test_unknown_format_rejected(self, session):
        df = session.create_dataframe(make_rows(20), EDGE_SCHEMA, "e")
        with pytest.raises(ValueError):
            df.create_index("src", storage_format="parquet")


class TestBehaviouralEquivalence:
    def test_lookups_agree(self, pair):
        rows, row_idf, col_idf = pair
        for k in range(0, 50, 7):
            assert _normalize(col_idf.lookup_tuples(k)) == _normalize(row_idf.lookup_tuples(k))

    def test_counts_agree(self, pair):
        rows, row_idf, col_idf = pair
        assert col_idf.count() == row_idf.count() == len(rows)

    def test_sql_point_query(self, pair, session):
        rows, _, col_idf = pair
        col_idf.create_or_replace_temp_view("edges_c")
        got = session.sql("SELECT * FROM edges_c WHERE src = 9").collect_tuples()
        assert _normalize(got) == _normalize(r for r in rows if r[0] == 9)

    def test_indexed_join(self, pair, session):
        rows, _, col_idf = pair
        probe = session.create_dataframe(
            [(k,) for k in range(0, 50, 5)], Schema.of(("k", LONG)), "p"
        )
        got = probe.join(col_idf.to_df(), on=("k", "src")).collect_tuples()
        want = [(r[0],) + r for r in rows if r[0] % 5 == 0]
        norm = lambda ts: sorted(
            (int(a), int(b), int(c), float(d)) for a, b, c, d in ts
        )
        assert norm(got) == norm(want)

    def test_appends_and_mvcc(self, pair):
        rows, _, col_idf = pair
        v1 = col_idf.append_rows([(7, 999, 9.9)])
        assert len(v1.lookup_tuples(7)) == len(col_idf.lookup_tuples(7)) + 1
        assert v1.version == 1
        # divergence
        v1b = col_idf.append_rows([(7, 888, 8.8)])
        assert _normalize(v1.lookup_tuples(7)) != _normalize(v1b.lookup_tuples(7))

    def test_fault_tolerance(self, pair):
        rows, _, col_idf = pair
        ctx = col_idf.session.context
        expect = _normalize(r for r in rows if r[0] == 3)
        ctx.kill_executor(ctx.alive_executor_ids()[0])
        assert _normalize(col_idf.lookup_tuples(3)) == expect

    def test_full_scan_aggregate(self, pair, session):
        rows, _, col_idf = pair
        from collections import Counter

        got = dict(col_idf.to_df().group_by("src").count().collect_tuples())
        assert {int(k): v for k, v in got.items()} == dict(Counter(r[0] for r in rows))
