"""Schemas, types, Row wrapper, ColumnBatch."""

import numpy as np
import pytest

from repro.sql.columnar import ColumnBatch
from repro.sql.row import Row
from repro.sql.types import (
    BOOLEAN,
    DOUBLE,
    INTEGER,
    LONG,
    STRING,
    BooleanType,
    DoubleType,
    IntegerType,
    LongType,
    Schema,
    StringType,
    StructField,
)


class TestTypes:
    def test_singleton_equality(self):
        assert IntegerType() == INTEGER
        assert LONG != DOUBLE
        assert hash(StringType()) == hash(STRING)

    def test_primitive_flags(self):
        assert INTEGER.primitive and LONG.primitive and DOUBLE.primitive and BOOLEAN.primitive
        assert not STRING.primitive  # strings must be hashed before indexing

    def test_validate(self):
        assert LONG.validate(5) and not LONG.validate("5") and not LONG.validate(True)
        assert DOUBLE.validate(1.5) and DOUBLE.validate(2)
        assert STRING.validate("x") and not STRING.validate(5)
        assert BOOLEAN.validate(True) and not BOOLEAN.validate(1)


class TestSchema:
    def test_index_of(self):
        s = Schema.of(("a", LONG), ("b", STRING))
        assert s.index_of("a") == 0
        assert s.index_of("b") == 1
        with pytest.raises(KeyError):
            s.index_of("c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.of(("a", LONG), ("a", STRING))

    def test_select_preserves_order(self):
        s = Schema.of(("a", LONG), ("b", STRING), ("c", DOUBLE))
        sel = s.select(["c", "a"])
        assert sel.names() == ["c", "a"]

    def test_concat_renames_duplicates(self):
        left = Schema.of(("id", LONG), ("v", DOUBLE))
        right = Schema.of(("id", LONG), ("w", DOUBLE))
        joined = left.concat(right)
        assert joined.names() == ["id", "v", "id_r", "w"]

    def test_concat_double_collision(self):
        left = Schema.of(("id", LONG), ("id_r", LONG))
        right = Schema.of(("id", LONG),)
        assert left.concat(right).names() == ["id", "id_r", "id_r_r"]

    def test_contains_iter_len(self):
        s = Schema.of(("a", LONG), ("b", STRING))
        assert "a" in s and "z" not in s
        assert len(s) == 2
        assert [f.name for f in s] == ["a", "b"]


class TestRow:
    SCHEMA = Schema.of(("id", LONG), ("name", STRING))

    def test_access_by_name_index_attr(self):
        r = Row((7, "x"), self.SCHEMA)
        assert r["id"] == 7 and r[1] == "x" and r.name == "x"

    def test_missing_attr(self):
        r = Row((7, "x"), self.SCHEMA)
        with pytest.raises(AttributeError):
            _ = r.nope

    def test_equality_with_tuple_and_row(self):
        a = Row((1, "a"), self.SCHEMA)
        assert a == (1, "a")
        assert a == Row((1, "a"), self.SCHEMA)
        assert a != Row((2, "a"), self.SCHEMA)

    def test_as_dict(self):
        assert Row((1, "a"), self.SCHEMA).as_dict() == {"id": 1, "name": "a"}


class TestColumnBatch:
    SCHEMA = Schema.of(("id", LONG), ("name", STRING), ("v", DOUBLE))
    ROWS = [(1, "a", 0.5), (2, "b", 1.5), (3, "c", 2.5)]

    def test_roundtrip(self):
        batch = ColumnBatch.from_rows(self.ROWS, self.SCHEMA)
        assert batch.to_rows() == self.ROWS
        assert len(batch) == 3

    def test_typed_columns(self):
        batch = ColumnBatch.from_rows(self.ROWS, self.SCHEMA)
        assert batch.column("id").dtype == np.int64
        assert batch.column("v").dtype == np.float64
        assert batch.column("name").dtype == object

    def test_project_is_view(self):
        batch = ColumnBatch.from_rows(self.ROWS, self.SCHEMA)
        proj = batch.project(["v", "id"])
        assert proj.schema.names() == ["v", "id"]
        assert proj.column("id") is batch.column("id")  # zero copy
        assert proj.to_rows() == [(0.5, 1), (1.5, 2), (2.5, 3)]

    def test_filter(self):
        batch = ColumnBatch.from_rows(self.ROWS, self.SCHEMA)
        mask = batch.column("id") > 1
        out = batch.filter(mask)
        assert out.to_rows() == self.ROWS[1:]
        assert out.num_rows == 2

    def test_empty(self):
        batch = ColumnBatch.from_rows([], self.SCHEMA)
        assert batch.to_rows() == []
        assert batch.nbytes >= 0
