"""Expression trees: scalar eval, vectorized eval, and their agreement.

The vectorized/row-wise agreement property matters beyond correctness: the
two paths are the vanilla-vs-indexed execution difference (Fig. 8), so they
must agree on semantics exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.analysis import resolve_expression
from repro.sql.expressions import (
    Alias,
    And,
    Avg,
    BinaryOp,
    Column,
    Count,
    In,
    IsNull,
    Literal,
    Max,
    Min,
    Not,
    Or,
    Sum,
    combine_conjuncts,
    split_conjuncts,
)
from repro.sql.functions import avg, col, count, lit, max_, min_, sum_
from repro.sql.types import BOOLEAN, DOUBLE, LONG, STRING, Schema

SCHEMA = Schema.of(("a", LONG), ("b", DOUBLE), ("s", STRING))


def resolved(expr):
    return resolve_expression(expr, SCHEMA)


class TestScalarEval:
    ROW = (3, 1.5, "xyz")

    def test_column(self):
        assert resolved(col("a")).eval(self.ROW) == 3

    def test_unresolved_column_raises(self):
        with pytest.raises(RuntimeError):
            col("a").eval(self.ROW)

    def test_literal(self):
        assert lit(42).eval(self.ROW) == 42

    def test_arithmetic(self):
        e = resolved(col("a") * 2 + col("b"))
        assert e.eval(self.ROW) == 7.5

    def test_comparisons(self):
        assert resolved(col("a") > 2).eval(self.ROW)
        assert not resolved(col("a") >= 4).eval(self.ROW)
        assert resolved(col("s") == "xyz").eval(self.ROW)
        assert resolved(col("s") != "abc").eval(self.ROW)

    def test_boolean_ops(self):
        e = resolved((col("a") > 1) & ~(col("b") > 10))
        assert e.eval(self.ROW)
        assert resolved((col("a") > 100) | (col("s") == "xyz")).eval(self.ROW)

    def test_in(self):
        assert resolved(col("a").isin(1, 2, 3)).eval(self.ROW)
        assert not resolved(col("a").isin([7, 8])).eval(self.ROW)

    def test_is_null(self):
        e = resolved(IsNull(col("s")))
        assert not e.eval(self.ROW)
        assert e.eval((1, 1.0, None))
        assert resolved(IsNull(col("s"), negated=True)).eval(self.ROW)

    def test_modulo_and_division(self):
        assert resolved(col("a") % 2).eval(self.ROW) == 1
        assert resolved(col("a") / 2).eval(self.ROW) == 1.5

    def test_alias_transparent(self):
        e = resolved(Alias(col("a") + 1, "a1"))
        assert e.eval(self.ROW) == 4
        assert e.output_name() == "a1"


class TestVectorizedEval:
    COLUMNS = {
        "a": np.array([1, 2, 3, 4], dtype=np.int64),
        "b": np.array([0.5, 1.5, 2.5, 3.5]),
        "s": np.array(["x", "y", "x", "z"], dtype=object),
    }

    def test_column(self):
        np.testing.assert_array_equal(col("a").eval_vector(self.COLUMNS), self.COLUMNS["a"])

    def test_comparison(self):
        mask = (col("a") > 2).eval_vector(self.COLUMNS)
        assert mask.tolist() == [False, False, True, True]

    def test_string_equality(self):
        mask = (col("s") == "x").eval_vector(self.COLUMNS)
        assert mask.tolist() == [True, False, True, False]

    def test_logical(self):
        mask = ((col("a") > 1) & (col("b") < 3)).eval_vector(self.COLUMNS)
        assert mask.tolist() == [False, True, True, False]
        mask = Not(col("a") > 1).eval_vector(self.COLUMNS)
        assert mask.tolist() == [True, False, False, False]

    def test_in(self):
        mask = col("a").isin(2, 4).eval_vector(self.COLUMNS)
        assert mask.tolist() == [False, True, False, True]

    def test_arithmetic(self):
        out = (col("a") * 10).eval_vector(self.COLUMNS)
        assert out.tolist() == [10, 20, 30, 40]

    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=30),
        st.integers(min_value=-100, max_value=100),
    )
    @settings(max_examples=40)
    def test_row_and_vector_agree_on_comparison(self, values, threshold):
        schema = Schema.of(("x", LONG))
        expr = col("x") > threshold
        rows = [(v,) for v in values]
        scalar = [bool(resolve_expression(expr, schema).eval(r)) for r in rows]
        vector = expr.eval_vector({"x": np.array(values, dtype=np.int64)}).tolist()
        assert scalar == vector


class TestDataTypes:
    def test_comparison_is_boolean(self):
        assert (col("a") > 1).data_type(SCHEMA) == BOOLEAN

    def test_arithmetic_promotes(self):
        assert (col("a") + 1).data_type(SCHEMA) == LONG
        assert (col("a") + col("b")).data_type(SCHEMA) == DOUBLE
        assert (col("a") / 2).data_type(SCHEMA) == DOUBLE

    def test_literal_types(self):
        assert lit(1).data_type(SCHEMA) == LONG
        assert lit(1.0).data_type(SCHEMA) == DOUBLE
        assert lit("x").data_type(SCHEMA) == STRING
        assert lit(True).data_type(SCHEMA) == BOOLEAN


class TestAggregates:
    ROWS = [(1, 1.0, "a"), (2, 2.0, "b"), (3, 3.0, None)]

    def _run(self, agg):
        agg = resolved(agg)
        acc = agg.init()
        for r in self.ROWS:
            acc = agg.update(acc, r)
        return agg.finish(acc)

    def test_sum(self):
        assert self._run(sum_("a")) == 6

    def test_count_star_and_column(self):
        assert self._run(count()) == 3
        assert self._run(count("s")) == 2  # skips null

    def test_min_max(self):
        assert self._run(min_("b")) == 1.0
        assert self._run(max_("b")) == 3.0

    def test_avg(self):
        assert self._run(avg("a")) == pytest.approx(2.0)

    def test_merge(self):
        s = Sum(resolved(col("a")))
        a = s.update(s.init(), (5, 0, ""))
        b = s.update(s.init(), (7, 0, ""))
        assert s.merge(a, b) == 12

    def test_avg_empty_is_none(self):
        a = Avg(resolved(col("a")))
        assert a.finish(a.init()) is None

    def test_min_merge_with_none(self):
        m = Min(resolved(col("a")))
        assert m.merge(None, 5) == 5
        assert m.merge(3, None) == 3


class TestConjuncts:
    def test_split_and_combine_roundtrip(self):
        e = (col("a") > 1) & ((col("b") < 2) & (col("s") == "x"))
        parts = split_conjuncts(e)
        assert len(parts) == 3
        combined = combine_conjuncts(parts)
        row_schema = Schema.of(("a", LONG), ("b", DOUBLE), ("s", STRING))
        r = (2, 1.0, "x")
        assert resolve_expression(combined, row_schema).eval(r)

    def test_combine_empty_is_none(self):
        assert combine_conjuncts([]) is None

    def test_references(self):
        e = (col("a") > 1) & (col("s") == "x")
        assert e.references() == {"a", "s"}
