"""DataFrame API end-to-end through the session pipeline."""

import pytest

from repro.sql.functions import avg, col, count, lit, max_, min_, sum_
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

SCHEMA = Schema.of(("id", LONG), ("grp", STRING), ("v", DOUBLE))


@pytest.fixture()
def session() -> Session:
    return Session()


@pytest.fixture()
def df(session):
    rows = [(i, f"g{i % 4}", i * 0.5) for i in range(100)]
    return session.create_dataframe(rows, SCHEMA, "t")


class TestBasics:
    def test_collect_tuples(self, df):
        assert len(df.collect_tuples()) == 100

    def test_collect_rows_have_schema(self, df):
        r = df.limit(1).collect()[0]
        assert r.id == 0 and r.grp == "g0"

    def test_columns(self, df):
        assert df.columns == ["id", "grp", "v"]

    def test_select(self, df):
        out = df.select("grp", "id").limit(2).collect_tuples()
        assert out == [("g0", 0), ("g1", 1)]

    def test_select_star(self, df):
        assert df.select("*") is df

    def test_select_expression(self, df):
        out = df.select((col("id") * 2).alias("twice")).limit(3).collect_tuples()
        assert out == [(0,), (2,), (4,)]

    def test_where(self, df):
        assert df.where(col("id") < 10).count() == 10

    def test_where_chained(self, df):
        assert df.where(col("id") < 10).where(col("id") >= 5).count() == 5

    def test_with_column(self, df):
        out = df.with_column("vv", col("v") * 2)
        assert out.columns == ["id", "grp", "v", "vv"]
        first = out.limit(1).collect()[0]
        assert first.vv == first.v * 2

    def test_limit_and_take(self, df):
        assert len(df.take(7)) == 7
        assert df.first().id == 0

    def test_order_by(self, df):
        out = df.order_by("v", ascending=False).limit(2).collect()
        assert out[0].v >= out[1].v
        assert out[0].id == 99

    def test_order_by_multi(self, df):
        out = df.order_by("grp", "id", ascending=[True, False]).limit(2).collect()
        assert out[0].grp == "g0" and out[0].id == 96

    def test_union(self, df, session):
        other = session.create_dataframe([(999, "gx", 0.0)], SCHEMA, "o")
        assert df.union(other).count() == 101

    def test_count(self, df):
        assert df.count() == 100

    def test_show_smoke(self, df, capsys):
        df.limit(2).show()
        out = capsys.readouterr().out
        assert "id" in out and "g0" in out

    def test_explain_mentions_operators(self, df):
        text = df.where(col("id") < 5).explain()
        assert "Filter" in text


class TestAggregation:
    def test_group_by_count(self, df):
        got = dict(df.group_by("grp").agg(count().alias("n")).collect_tuples())
        assert got == {f"g{k}": 25 for k in range(4)}

    def test_group_by_multiple_aggs(self, df):
        rows = df.group_by("grp").agg(
            sum_("v").alias("s"), min_("id").alias("lo"), max_("id").alias("hi")
        ).collect()
        by_grp = {r.grp: r for r in rows}
        assert by_grp["g0"].lo == 0 and by_grp["g0"].hi == 96
        assert by_grp["g1"].s == pytest.approx(sum(i * 0.5 for i in range(1, 100, 4)))

    def test_global_agg(self, df):
        row = df.agg(avg("v").alias("m"), count().alias("n")).collect()[0]
        assert row.n == 100
        assert row.m == pytest.approx(sum(i * 0.5 for i in range(100)) / 100)

    def test_grouped_count_helper(self, df):
        got = dict(df.group_by("grp").count().collect_tuples())
        assert got[f"g0"] == 25

    def test_non_aggregate_rejected(self, df):
        with pytest.raises(ValueError):
            df.group_by("grp").agg(col("id"))


class TestJoins:
    def test_join_on_shared_name(self, session, df):
        dims = session.create_dataframe(
            [(f"g{i}", i * 10) for i in range(4)],
            Schema.of(("grp", STRING), ("weight", LONG)),
            "dims",
        )
        out = df.join(dims, on="grp")
        assert out.count() == 100
        assert out.columns == ["id", "grp", "v", "grp_r", "weight"]

    def test_join_on_pair(self, session, df):
        dims = session.create_dataframe(
            [(f"g{i}",) for i in range(2)], Schema.of(("g", STRING)), "dims"
        )
        assert df.join(dims, on=("grp", "g")).count() == 50

    def test_join_on_expression(self, session, df):
        dims = session.create_dataframe(
            [(f"g{i}",) for i in range(2)], Schema.of(("g", STRING)), "dims"
        )
        assert df.join(dims, on=(col("grp") == col("g"))).count() == 50

    def test_left_join_keeps_unmatched(self, session, df):
        dims = session.create_dataframe(
            [("g0", 1)], Schema.of(("g", STRING), ("w", LONG)), "dims"
        )
        out = df.join(dims, on=("grp", "g"), how="left").collect()
        assert len(out) == 100
        unmatched = [r for r in out if r.w is None]
        assert len(unmatched) == 75

    def test_join_invalid_condition(self, session, df):
        dims = session.create_dataframe([("g0",)], Schema.of(("g", STRING)), "d")
        with pytest.raises(ValueError):
            df.join(dims, on=(col("grp") > col("g")))


class TestCacheAndViews:
    def test_cache_returns_equivalent_df(self, df):
        cached = df.cache()
        assert sorted(cached.collect_tuples()) == sorted(df.collect_tuples())

    def test_cached_scan_is_vectorized(self, df, session):
        cached = df.cache()
        physical = session.plan_physical(cached.where(col("id") < 5).plan)
        assert "ColumnarScan" in physical.tree_string()

    def test_temp_view_roundtrip(self, session, df):
        df.create_or_replace_temp_view("mytable")
        assert session.table("mytable").count() == 100
        got = session.sql("SELECT count(*) AS n FROM mytable").collect()[0]
        assert got.n == 100

    def test_missing_view(self, session):
        with pytest.raises(KeyError):
            session.table("ghost")


class TestSQLEndToEnd:
    def test_full_query(self, session, df):
        df.create_or_replace_temp_view("t")
        out = session.sql(
            "SELECT grp, sum(v) AS total, count(*) AS n FROM t "
            "WHERE id >= 10 GROUP BY grp ORDER BY total DESC LIMIT 2"
        ).collect()
        assert len(out) == 2
        assert out[0].total >= out[1].total

    def test_sql_join(self, session, df):
        df.create_or_replace_temp_view("t")
        session.create_dataframe(
            [(f"g{i}", i) for i in range(4)],
            Schema.of(("g", STRING), ("gid", LONG)),
            "d",
        ).create_or_replace_temp_view("d")
        out = session.sql(
            "SELECT id, gid FROM t JOIN d ON grp = g WHERE id < 8"
        ).collect_tuples()
        assert sorted(out) == [(i, i % 4) for i in range(8)]
