"""Memory manager: budgets, tiered spill/evict, backpressure, chaos squeezes.

The subsystem under test (DESIGN.md §10):

* metering — every stored block deep-sized, MVCC-shared structure once;
* tier 1 (spill) — sealed row batches move to disk before anything is lost;
* tier 2 (evict) — whole blocks dropped LRU / reference-distance, rebuilt
  from lineage on the next request;
* backpressure — a put that cannot fit raises a retryable
  :class:`MemoryPressureError`, surfaced as an ordinary task failure;
* chaos — seeded memory squeezes force spill storms mid-run.

Every end-to-end test is *differential*: the budgeted run must produce
exactly the rows an unbounded run produces.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.topology import private_cluster
from repro.config import Config
from repro.engine.context import EngineContext
from repro.engine.memory_manager import MemoryManager, MemoryPressureError
from repro.engine.scheduler import TaskFailure
from repro.sql.session import Session
from repro.sql.types import DOUBLE, LONG, STRING, Schema

MODES = ("sequential", "threads")
SCHEMA = Schema.of(("k", LONG), ("v", DOUBLE), ("payload", STRING))


def make_rows(n=3000, keys=60, seed=0, width=120) -> list[tuple]:
    rng = random.Random(seed)
    return [
        (rng.randrange(keys), round(rng.random(), 6), "x" * rng.randrange(width // 2, width))
        for _ in range(n)
    ]


def make_session(mode="sequential", tmp_path=None, **overrides) -> Session:
    cfg = dict(
        default_parallelism=4,
        shuffle_partitions=4,
        scheduler_mode=mode,
        row_batch_size=8192,
        task_retry_backoff=0.001,
        task_retry_backoff_max=0.01,
    )
    if tmp_path is not None:
        cfg.setdefault("spill_dir", str(tmp_path))
    cfg.update(overrides)
    ctx = EngineContext(
        config=Config(**cfg),
        topology=private_cluster(num_machines=1, executors_per_machine=2),
    )
    return Session(context=ctx)


def cached_index(session, rows, num_partitions=8):
    df = session.create_dataframe(rows, SCHEMA, "t")
    return df.create_index("k", num_partitions=num_partitions).cache_index()


def collected(idf) -> list[tuple]:
    return sorted(tuple(r) for r in idf.collect())


@pytest.fixture(scope="module")
def baseline_rows() -> list[tuple]:
    return make_rows()


@pytest.fixture(scope="module")
def baseline() -> list[tuple]:
    s = make_session()
    return collected(cached_index(s, make_rows()))


# ---------------------------------------------------------------------------
# Metering unit behaviour (MemoryManager driven directly)
# ---------------------------------------------------------------------------


class TestMetering:
    def test_disabled_without_budget_or_chaos(self):
        ctx = make_session().context
        mm = ctx.executors["m0e0"].memory_manager
        assert not mm.enabled
        bm = ctx.executors["m0e0"].block_manager
        bm.put((1, 0), [b"x" * 1000])
        assert mm.used_bytes == 0  # unmetered: seed behaviour

    def test_put_meters_and_publishes_gauge(self, tmp_path):
        s = make_session(tmp_path=tmp_path, executor_memory_bytes=1 << 20)
        ctx = s.context
        bm = ctx.executors["m0e0"].block_manager
        bm.put((1, 0), [b"x" * 1000])
        used = ctx.executors["m0e0"].memory_manager.used_bytes
        assert used > 1000
        assert ctx.registry.gauge_value("memory_bytes_cached", executor="m0e0") == float(used)
        assert ctx.registry.counter_total("memory_put_bytes_total") >= used

    def test_mvcc_shared_structure_counted_once(self, tmp_path):
        from repro.indexed.partition import IndexedPartition

        s = make_session(tmp_path=tmp_path, executor_memory_bytes=64 << 20)
        mm = s.context.executors["m0e0"].memory_manager
        bm = s.context.executors["m0e0"].block_manager
        parent = IndexedPartition(SCHEMA, "k", batch_size=2048)
        parent.insert_rows([(i % 10, float(i), "p" * 50) for i in range(500)])
        child = parent.snapshot(1)
        child.insert_row((3, 1.0, "new"))
        bm.put((1, 0), [parent])
        parent_size = mm.block_sizes()[(1, 0)]
        bm.put((2, 0), [child])
        child_size = mm.block_sizes()[(2, 0)]
        # The child shares the parent's cTrie nodes and batches; its
        # incremental charge must be far below a standalone copy.
        assert child_size < parent_size / 4

    def test_lru_eviction_order(self, tmp_path):
        s = make_session(tmp_path=tmp_path, executor_memory_bytes=10_000)
        bm = s.context.executors["m0e0"].block_manager
        bm.put((1, 0), [b"a" * 4000])
        bm.put((2, 0), [b"b" * 4000])
        bm.get((1, 0))  # touch: (1,0) becomes MRU
        bm.put((3, 0), [b"c" * 4000])  # overflow: (2,0) is now coldest
        assert bm.get((1, 0)) is not None
        assert bm.get((2, 0)) is None  # evicted
        assert bm.get((3, 0)) is not None

    def test_reference_distance_prefers_unreferenced(self, tmp_path):
        s = make_session(
            tmp_path=tmp_path,
            executor_memory_bytes=10_000,
            eviction_policy="reference_distance",
        )
        ctx = s.context
        bm = ctx.executors["m0e0"].block_manager
        bm.put((1, 0), [b"a" * 4000])
        bm.put((2, 0), [b"b" * 4000])
        # RDD 1 is heavily referenced by job lineage; RDD 2 never.
        with ctx._lock:
            ctx._lineage_refs[1] = 5
        bm.put((3, 0), [b"c" * 4000])
        assert bm.get((1, 0)) is not None  # kept despite being LRU-coldest
        assert bm.get((2, 0)) is None

    def test_unknown_policy_rejected(self):
        ctx = make_session().context
        ctx.config.eviction_policy = "fifo"
        with pytest.raises(ValueError):
            MemoryManager(ctx, "m0e0")

    def test_overwrite_remeters(self, tmp_path):
        s = make_session(tmp_path=tmp_path, executor_memory_bytes=1 << 20)
        mm = s.context.executors["m0e0"].memory_manager
        bm = s.context.executors["m0e0"].block_manager
        bm.put((1, 0), [b"x" * 10_000])
        first = mm.used_bytes
        bm.put((1, 0), [b"x" * 100])
        assert mm.used_bytes < first


# ---------------------------------------------------------------------------
# Tiered shedding, end to end (differential vs unbounded)
# ---------------------------------------------------------------------------


class TestTieredShedding:
    @pytest.mark.parametrize("mode", MODES)
    def test_spill_tier_first(self, mode, tmp_path, baseline_rows, baseline):
        """A moderate budget is satisfied by spilling alone: results stay
        identical and nothing is evicted."""
        s = make_session(mode, tmp_path, executor_memory_bytes=120_000)
        idf = cached_index(s, baseline_rows)
        assert collected(idf) == baseline
        reg = s.context.registry
        assert reg.counter_total("memory_spills_total") > 0
        assert reg.counter_total("memory_spilled_bytes_total") > 0
        assert reg.counter_total("memory_evictions_total") == 0
        assert reg.counter_total("memory_faulted_back_bytes_total") > 0
        assert "block_spilled" in s.context.metrics.recovery_summary()

    @pytest.mark.parametrize("mode", MODES)
    def test_four_x_over_budget_completes(self, mode, tmp_path, baseline_rows, baseline):
        """The acceptance workload: cached partitions exceed the executor
        budget by >= 4x; the query completes, correct, in both modes, with
        spill + evict + fault-back activity and recomputes attributed."""
        budget = 50_000
        s = make_session(mode, tmp_path, executor_memory_bytes=budget)
        idf = cached_index(s, baseline_rows)
        # Repeated scans: evicted blocks recompute, spilled batches fault in.
        assert collected(idf) == baseline
        assert collected(idf) == baseline
        reg = s.context.registry
        assert reg.counter_total("memory_spills_total") > 0
        assert reg.counter_total("memory_evictions_total") > 0
        assert reg.counter_total("memory_faulted_back_bytes_total") > 0
        summary = s.context.metrics.recovery_summary()
        assert summary.get("block_evicted", 0) > 0
        assert summary.get("block_recomputed", 0) > 0
        for executor_id, mgr in (
            (e.executor_id, e.memory_manager) for e in s.context.executors.values()
        ):
            assert mgr.used_bytes <= budget, executor_id

    def test_pressure_is_real(self, tmp_path, baseline_rows):
        """Sanity for the 4x claim: the unbounded footprint really is >= 4x
        the total budget the bounded run got."""
        unbounded = make_session("sequential", tmp_path)
        cached_index(unbounded, baseline_rows)
        total_budget = 50_000 * len(unbounded.context.executors)
        # Unbounded runs are unmetered; size the store directly.
        from repro.utils.memory import deep_sizeof

        footprint = sum(
            deep_sizeof(e.block_manager._blocks)
            for e in unbounded.context.executors.values()
        )
        assert footprint >= 4 * total_budget

    def test_proactive_spill_index(self, tmp_path, baseline_rows, baseline):
        s = make_session("sequential", tmp_path)
        idf = cached_index(s, baseline_rows)
        freed = idf.spill_index()
        assert freed > 0
        stats = idf.memory_stats()
        assert sum(st["resident_bytes"] for st in stats) < sum(
            st["data_bytes"] for st in stats
        ) + sum(st["index_bytes"] for st in stats)
        assert collected(idf) == baseline
        assert sum(st["spill_faults"] for st in idf.memory_stats()) > 0


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


class TestBackpressure:
    @pytest.mark.parametrize("mode", MODES)
    def test_impossible_budget_fails_cleanly(self, mode, tmp_path, baseline_rows):
        """A budget no single partition can fit: the put raises a retryable
        MemoryPressureError, the scheduler burns its retries, and the job
        fails as an ordinary TaskFailure — never a raw MemoryError."""
        s = make_session(mode, tmp_path, executor_memory_bytes=4_000, max_task_retries=2)
        with pytest.raises(TaskFailure) as excinfo:
            cached_index(s, baseline_rows)
        assert isinstance(excinfo.value.__cause__, MemoryPressureError)
        reg = s.context.registry
        assert reg.counter_total("memory_pressure_errors_total") > 0
        assert reg.counter_total("cache_put_rejected_total") > 0
        summary = s.context.metrics.recovery_summary()
        assert summary.get("memory_pressure", 0) > 0
        assert summary.get("task_retry", 0) > 0  # treated as retryable

    def test_error_carries_attribution(self, tmp_path):
        s = make_session(tmp_path=tmp_path, executor_memory_bytes=1_000)
        bm = s.context.executors["m0e0"].block_manager
        with pytest.raises(MemoryPressureError) as excinfo:
            bm.put((1, 0), [b"z" * 50_000])
        err = excinfo.value
        assert err.executor_id == "m0e0"
        assert err.budget == 1_000
        assert err.needed > err.budget
        # The failed put left the store unchanged.
        assert bm.get((1, 0)) is None
        assert s.context.executors["m0e0"].memory_manager.used_bytes == 0


# ---------------------------------------------------------------------------
# Eviction x chaos
# ---------------------------------------------------------------------------


class TestEvictionChaos:
    @pytest.mark.parametrize("mode", MODES)
    def test_eviction_with_executor_kill(self, mode, tmp_path, baseline_rows, baseline):
        """Mid-query, one executor dies while the other is evicting under
        budget pressure; lineage recompute must still produce identical
        results and the events must say who did what."""
        s = make_session(
            mode,
            tmp_path,
            executor_memory_bytes=60_000,
            executor_replacement=True,
            executor_restart_delay_tasks=2,
        )
        ctx = s.context
        idf = cached_index(s, baseline_rows)
        ctx.faults.fail_executor_at_task("m0e1", 3)  # mid-stage kill
        assert collected(idf) == baseline
        assert collected(idf) == baseline
        summary = ctx.metrics.recovery_summary()
        assert summary.get("executor_lost", 0) >= 1
        assert summary.get("block_evicted", 0) > 0
        assert summary.get("block_recomputed", 0) > 0
        valid = set(ctx.topology.executor_ids())
        for event in ctx.metrics.recovery_events:
            if event.kind in ("block_spilled", "block_evicted"):
                assert event.executor_id in valid
                assert isinstance(event.partition, int)

    @pytest.mark.parametrize("mode", MODES)
    def test_explicit_storm_mid_run(self, mode, tmp_path, baseline_rows, baseline):
        """A forced pressure storm between queries (unbounded budget): every
        cached byte above factor x usage is shed, then recomputed/faulted."""
        s = make_session(mode, tmp_path)
        idf = cached_index(s, baseline_rows)
        for runtime in s.context.executors.values():
            runtime.block_manager.pressure_storm(0.25)
        assert collected(idf) == baseline
        assert s.context.metrics.recovery_summary().get("block_spilled", 0) > 0


# ---------------------------------------------------------------------------
# Chaos memory squeezes
# ---------------------------------------------------------------------------


class TestChaosSqueeze:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("mode", MODES)
    def test_seeded_squeezes_converge(self, mode, seed, tmp_path, baseline_rows, baseline):
        s = make_session(
            mode,
            tmp_path,
            chaos_seed=seed,
            chaos_memory_squeeze_prob=0.4,
            chaos_memory_squeeze_factor=0.4,
        )
        idf = cached_index(s, baseline_rows)
        for _ in range(2):
            assert collected(idf) == baseline
        summary = s.context.metrics.recovery_summary()
        assert summary.get("chaos_memory_squeeze", 0) > 0
        assert s.context.task_scheduler.busy == {}

    def test_targeted_squeeze_without_budget(self, tmp_path, baseline_rows, baseline):
        """squeeze_memory_at_task works even when no budget was configured:
        metering bootstraps lazily at the storm."""
        s = make_session(tmp_path=tmp_path)
        idf = cached_index(s, baseline_rows)
        s.context.faults.squeeze_memory_at_task(1, factor=0.3)
        assert collected(idf) == baseline
        summary = s.context.metrics.recovery_summary()
        assert summary.get("chaos_memory_squeeze", 0) == 1
        assert summary.get("block_spilled", 0) > 0

    def test_squeeze_draws_are_deterministic(self):
        from repro.cluster.faults import FaultInjector

        a = FaultInjector(seed=7, memory_squeeze_prob=0.5)
        b = FaultInjector(seed=7, memory_squeeze_prob=0.5)
        da = [a.on_task_start(0, i, 0, 1).memory_squeeze_factor for i in range(20)]
        db = [b.on_task_start(0, i, 0, 1).memory_squeeze_factor for i in range(20)]
        assert da == db
        assert any(f > 0 for f in da) and not all(f > 0 for f in da)


# ---------------------------------------------------------------------------
# Property test: random spill/fault-in/evict schedules over an MVCC chain
# ---------------------------------------------------------------------------


def _random_schedule_run(seed: int, tmp_path) -> None:
    """Build an MVCC append chain, then interleave random memory events
    (proactive spills, pressure storms, scans) and check every version
    still collects exactly what a never-spilled run would."""
    rng = random.Random(seed)
    s = make_session(
        rng.choice(MODES),
        tmp_path,
        executor_memory_bytes=rng.choice([0, 80_000, 150_000]),
    )
    rows = make_rows(n=600, keys=20, seed=seed, width=60)
    versions = [cached_index(s, rows, num_partitions=4)]
    expected = [sorted(rows)]
    for _ in range(rng.randrange(2, 5)):
        extra = make_rows(n=rng.randrange(30, 120), keys=20, seed=rng.getrandbits(30), width=60)
        versions.append(versions[-1].append_rows(extra))
        expected.append(sorted(expected[-1] + extra))
    for _ in range(rng.randrange(6, 14)):
        op = rng.choice(("spill", "storm", "scan", "scan"))
        v = rng.randrange(len(versions))
        if op == "spill":
            versions[v].spill_index(keep_tail=rng.random() < 0.8)
        elif op == "storm":
            runtime = rng.choice(list(s.context.executors.values()))
            runtime.block_manager.pressure_storm(rng.choice([0.0, 0.3, 0.6]))
        else:
            assert collected(versions[v]) == expected[v], f"seed={seed} version={v}"
    for v, idf in enumerate(versions):
        assert collected(idf) == expected[v], f"seed={seed} version={v} (final)"


@pytest.mark.parametrize("seed", range(5))
def test_property_mvcc_memory_schedules(seed, tmp_path):
    _random_schedule_run(seed, tmp_path)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(5, 50))
def test_property_mvcc_memory_schedules_slow(seed, tmp_path):
    _random_schedule_run(seed, tmp_path)
